"""Mid-run regime hooks: costs, capacities, popularity, runner events.

These pin the scenario engine's contract with the core system: a
regime change must (a) take effect, (b) keep the columnar store and
the reference paths in exact agreement, and (c) consume no randomness
(so the rest of the trajectory is unperturbed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem
from repro.scenarios import (
    ArrivalRateChange,
    CapacityRamp,
    LocalityCap,
    RemappedPopularity,
    ScenarioRunner,
    ScenarioSpec,
    SeederOutage,
    build_scenario,
)
from repro.vod.popularity import ZipfMandelbrot


def tiny_system(seed: int = 0, **overrides) -> P2PSystem:
    system = P2PSystem(SystemConfig.tiny(seed=seed, **overrides))
    system.populate_static(20)
    system.run_slot()
    return system


def assert_same_problem(ref, new) -> None:
    """Byte-for-byte CSR equality of two slot problems."""
    assert ref.n_requests == new.n_requests
    assert ref.n_edges() == new.n_edges()
    ref_csr, new_csr = ref.csr(), new.csr()
    assert np.array_equal(ref_csr.uploaders, new_csr.uploaders)
    assert np.array_equal(ref_csr.capacity, new_csr.capacity)
    assert np.array_equal(ref.request_peer_array(), new.request_peer_array())

    def canonical(problem):
        csr = problem.csr()
        rows = csr.edge_rows()
        ups = csr.uploaders[csr.uploader_index]
        perm = np.lexsort((ups, rows))
        return rows[perm], ups[perm], csr.values[perm]

    for a, b in zip(canonical(ref), canonical(new)):
        assert np.array_equal(a, b)


class TestCostShocks:
    def test_cached_pairs_jump_in_place(self):
        system = tiny_system()
        costs = system.costs
        pairs = [
            (a, b)
            for a in system.peers
            for b in system.peers
            if a < b and costs.is_inter_isp(a, b)
        ][:10]
        before = {p: costs.cost(*p) for p in pairs}
        system.scale_inter_isp_costs(2.0)
        for pair, value in before.items():
            assert costs.cost(*pair) == pytest.approx(2.0 * value)

    def test_future_samples_scaled_without_consuming_extra_rng(self):
        a = tiny_system(seed=7)
        b = tiny_system(seed=7)
        b.scale_inter_isp_costs(3.0)
        # A never-sampled inter-ISP pair: same underlying draw, ×3.
        ids = sorted(a.peers)
        fresh = None
        for u in ids:
            for d in ids:
                if u < d and a.costs.is_inter_isp(u, d):
                    if (u, d) not in a.costs._cache:
                        fresh = (u, d)
                        break
            if fresh:
                break
        assert fresh is not None, "no unsampled inter-ISP pair left"
        assert b.costs.cost(*fresh) == pytest.approx(3.0 * a.costs.cost(*fresh))

    def test_pair_scale_targets_only_that_pair(self):
        system = tiny_system()
        costs = system.costs
        intra_pairs = [
            (a, b)
            for a in system.peers
            for b in system.peers
            if a < b and not costs.is_inter_isp(a, b)
        ][:5]
        before = {p: costs.cost(*p) for p in intra_pairs}
        system.set_isp_pair_cost_scale(0, 1, 4.0)  # inter pair only
        for pair, value in before.items():
            assert costs.cost(*pair) == value
        assert costs.isp_pair_scale(0, 1) == 4.0
        assert costs.isp_pair_scale(1, 0) == 4.0  # order-insensitive

    def test_scale_validation(self):
        system = tiny_system()
        with pytest.raises(ValueError):
            system.scale_inter_isp_costs(0.0)
        with pytest.raises(ValueError):
            system.set_isp_pair_cost_scale(0, 1, -1.0)

    def test_build_problem_matches_reference_after_shock(self):
        """The store's candidate costs are invalidated, not stale."""
        system = tiny_system()
        epoch = system.store.candidate_epoch
        system.scale_inter_isp_costs(2.5)
        assert system.store.candidate_epoch > epoch
        new_p, _ = system.build_problem(system.now)
        ref_p, _ = system.build_problem_reference(system.now)
        assert_same_problem(ref_p, new_p)
        # And again after another slot of deliveries.
        system.run_slot()
        new_p, _ = system.build_problem(system.now)
        ref_p, _ = system.build_problem_reference(system.now)
        assert_same_problem(ref_p, new_p)


class TestCapacityHooks:
    def test_set_upload_capacities_syncs_store(self):
        system = tiny_system()
        watchers = [p.peer_id for p in system.peers.values() if not p.is_seed]
        target = {watchers[0]: 0, watchers[1]: 7}
        assert system.set_upload_capacities(target) == 2
        ids, caps = system.store.capacity_columns()
        col = dict(zip(ids.tolist(), caps.tolist()))
        assert col[watchers[0]] == 0
        assert col[watchers[1]] == 7
        system.store.check_consistency(system.peers, system.tracker)
        problem, _ = system.build_problem(system.now)
        assert problem.capacity_of(watchers[1]) == 7

    def test_offline_ids_ignored(self):
        system = tiny_system()
        assert system.set_upload_capacities({10**9: 5}) == 0

    def test_negative_capacity_rejected(self):
        system = tiny_system()
        pid = next(iter(system.peers))
        with pytest.raises(ValueError):
            system.set_upload_capacities({pid: -1})

    def test_scale_capacities_floors_at_one(self):
        system = tiny_system()
        watchers = [p.peer_id for p in system.peers.values() if not p.is_seed]
        system.scale_upload_capacities(0.001, watchers)
        assert all(
            system.peers[pid].upload_capacity_chunks == 1 for pid in watchers
        )
        system.scale_upload_capacities(0.0, watchers)
        assert all(
            system.peers[pid].upload_capacity_chunks == 0 for pid in watchers
        )
        system.store.check_consistency(system.peers, system.tracker)

    def test_scale_never_resurrects_zeroed_peers(self):
        """A ramp over a downed peer leaves it downed (outage survives)."""
        system = tiny_system()
        watchers = [p.peer_id for p in system.peers.values() if not p.is_seed]
        downed = watchers[0]
        system.set_upload_capacities({downed: 0})
        system.scale_upload_capacities(2.0, watchers)
        assert system.peers[downed].upload_capacity_chunks == 0
        assert all(
            system.peers[pid].upload_capacity_chunks > 0
            for pid in watchers[1:]
        )

    def test_runs_cleanly_after_churn(self):
        """Capacity updates keep working after batched admit/remove."""
        system = tiny_system(seed=3)
        system.run_slot(churn=True, remove_finished=True)
        system.scale_upload_capacities(2.0)
        system.store.check_consistency(system.peers, system.tracker)
        system.run_slot(churn=True, remove_finished=True)


class TestRemappedPopularity:
    def test_promote_moves_probability_mass(self):
        base = ZipfMandelbrot(10)
        remapped = RemappedPopularity.promote(base, 9)
        pmf = remapped.pmf()
        assert pmf[9] == pytest.approx(base.pmf()[0])
        assert pmf[0] == pytest.approx(base.pmf()[9])
        assert np.argmax(pmf) == 9
        assert pmf.sum() == pytest.approx(1.0)

    def test_rotate_shifts_all_ranks(self):
        base = ZipfMandelbrot(5)
        remapped = RemappedPopularity.rotate(base, 2)
        assert np.argmax(remapped.pmf()) == 2

    def test_sampling_consumes_exactly_base_randomness(self):
        base = ZipfMandelbrot(10)
        remapped = RemappedPopularity.promote(base, 9)
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        for _ in range(50):
            remapped.sample(rng_a)
            base.sample(rng_b)
        # Both streams advanced identically.
        assert rng_a.random() == rng_b.random()

    def test_composition_flattens_to_one_layer(self):
        base = ZipfMandelbrot(6)
        twice = RemappedPopularity.rotate(
            RemappedPopularity.rotate(base, 1), 1
        )
        assert np.argmax(twice.pmf()) == 2
        # Repeated drift events must not deepen the wrapper chain.
        assert twice.base is base
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        nested_samples = [twice.sample(rng_a) for _ in range(20)]
        direct = RemappedPopularity.rotate(base, 2)
        assert nested_samples == [direct.sample(rng_b) for _ in range(20)]

    def test_bad_permutation_rejected(self):
        with pytest.raises(ValueError):
            RemappedPopularity(ZipfMandelbrot(4), [0, 1, 1, 2])


class TestRunnerEvents:
    def run_tiny(self, events, seed=2, duration=40.0, **spec_kwargs):
        spec = ScenarioSpec(
            name="probe",
            scale="tiny",
            schedulers=("auction",),
            duration_seconds=duration,
            events=tuple(events),
            **spec_kwargs,
        )
        runner = ScenarioRunner(spec, seed=seed)
        return runner, runner.run_one("auction")

    def test_arrival_rate_event_applies(self):
        _, system = self.run_tiny(
            [ArrivalRateChange(time=20.0, rate_per_s=5.0)],
            churn=True,
        )
        assert system.churn.arrival_rate_per_s == 5.0

    def test_locality_cap_event_applies(self):
        _, system = self.run_tiny(
            [LocalityCap(time=10.0, neighbor_target=3)],
            n_static_peers=15,
        )
        assert system.overlay.degree_target == 3

    def test_capacity_ramp_targets_watchers_only(self):
        _, baseline = self.run_tiny([], n_static_peers=15, duration=20.0)
        _, ramped = self.run_tiny(
            [CapacityRamp(time=10.0, factor=0.5, target="watchers")],
            n_static_peers=15,
            duration=20.0,
        )
        for pid, peer in ramped.peers.items():
            reference = baseline.peers[pid]
            if peer.is_seed:
                assert (
                    peer.upload_capacity_chunks
                    == reference.upload_capacity_chunks
                )
            else:
                assert peer.upload_capacity_chunks == max(
                    1, round(reference.upload_capacity_chunks * 0.5)
                )

    def test_seeder_outage_and_recovery(self):
        spec = build_scenario("seeder-failure", scale="tiny")
        runner = ScenarioRunner(spec.abridged(60.0, schedulers=("auction",)), seed=1)
        outage = next(r for r in runner.timeline if r.kind == "seed-outage")
        recovery = next(r for r in runner.timeline if r.kind == "seed-recovery")
        assert outage.time < recovery.time <= 60.0
        system = runner.run_one("auction")
        # After recovery every seed uploads again at its original rate.
        seed_caps = {
            p.peer_id: p.upload_capacity_chunks
            for p in system.peers.values()
            if p.is_seed
        }
        assert all(cap > 0 for cap in seed_caps.values())
        system.store.check_consistency(system.peers, system.tracker)

    def test_outage_zeroes_selected_seeds_mid_run(self):
        spec = ScenarioSpec(
            name="probe",
            scale="tiny",
            schedulers=("auction",),
            n_static_peers=10,
            duration_seconds=40.0,
            events=(SeederOutage(time=10.0, duration=100.0, fraction=0.5),),
        )
        system = ScenarioRunner(spec, seed=1).run_one("auction")
        seeds = [p for p in system.peers.values() if p.is_seed]
        downed = [p for p in seeds if p.upload_capacity_chunks == 0]
        # ceil(0.5 · k) seeds are down and stay down (no recovery yet).
        assert len(downed) == -(-len(seeds) // 2)

    def test_ramp_during_outage_compounds_into_recovery(self):
        """A seeds-targeted ramp inside an outage window applies at recovery."""
        spec = ScenarioSpec(
            name="probe",
            scale="tiny",
            schedulers=("auction",),
            n_static_peers=10,
            duration_seconds=50.0,
            events=(
                SeederOutage(time=10.0, duration=20.0, fraction=1.0),
                CapacityRamp(time=20.0, factor=2.0, target="seeds"),
            ),
        )
        baseline = ScenarioRunner(
            ScenarioSpec(
                name="probe", scale="tiny", schedulers=("auction",),
                n_static_peers=10, duration_seconds=50.0,
            ),
            seed=1,
        ).run_one("auction")
        system = ScenarioRunner(spec, seed=1).run_one("auction")
        for pid, peer in system.peers.items():
            if peer.is_seed:
                assert peer.upload_capacity_chunks == max(
                    1, baseline.peers[pid].upload_capacity_chunks * 2
                )

    def test_partial_invalid_capacity_update_leaves_state_consistent(self):
        system = ScenarioRunner(
            ScenarioSpec(
                name="probe", scale="tiny", schedulers=("auction",),
                n_static_peers=10, duration_seconds=10.0,
            ),
            seed=1,
        ).run_one("auction")
        ids = sorted(system.peers)
        before = {
            pid: system.peers[pid].upload_capacity_chunks for pid in ids
        }
        with pytest.raises(ValueError):
            system.set_upload_capacities({ids[0]: 5, ids[1]: -1})
        assert all(
            system.peers[pid].upload_capacity_chunks == before[pid]
            for pid in ids
        )
        system.store.check_consistency(system.peers, system.tracker)

    def test_overlapping_outages_nest(self):
        """A seed held by two outage windows recovers only when both end."""
        spec = ScenarioSpec(
            name="probe",
            scale="tiny",
            schedulers=("auction",),
            n_static_peers=10,
            duration_seconds=60.0,
            events=(
                SeederOutage(time=10.0, duration=20.0, fraction=1.0),
                SeederOutage(time=20.0, duration=100.0, fraction=1.0),
            ),
        )
        system = ScenarioRunner(spec, seed=1).run_one("auction")
        # First recovery (t=30) fired, second outage still holds: every
        # seed must remain at zero capacity at the end of the run.
        seeds = [p for p in system.peers.values() if p.is_seed]
        assert seeds and all(p.upload_capacity_chunks == 0 for p in seeds)

    def test_unknown_event_kind_raises(self):
        from repro.scenarios.events import TimedEvent

        runner, system = self.run_tiny([], duration=10.0)
        with pytest.raises(ValueError, match="unknown timeline event"):
            runner._apply_event(system, TimedEvent(0.0, "nope", {}), {})
