"""Spec validation and the YAML/JSON round trip."""

from __future__ import annotations

import pytest

from repro.scenarios import (
    CostShock,
    FlashCrowd,
    ScenarioSpec,
    SeederOutage,
    build_scenario,
    dump_scenario,
    event_from_dict,
    load_scenario,
    scenario_names,
    spec_from_dict,
    spec_to_dict,
)


class TestValidation:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            ScenarioSpec(name="x", scale="huge").validate()

    def test_empty_schedulers_rejected(self):
        with pytest.raises(ValueError, match="scheduler"):
            ScenarioSpec(name="x", schedulers=()).validate()

    def test_negative_event_time_rejected(self):
        spec = ScenarioSpec(name="x", events=(CostShock(time=-1.0),))
        with pytest.raises(ValueError, match="time"):
            spec.validate()

    def test_bad_override_surfaces_at_validate(self):
        spec = ScenarioSpec(
            name="x", config_overrides={"no_such_knob": 1}
        )
        with pytest.raises(TypeError):
            spec.validate()

    def test_half_specified_isp_pair_rejected(self):
        with pytest.raises(ValueError, match="isp_a"):
            CostShock(time=0.0, factor=2.0, isp_a=1).validate()

    def test_outage_fraction_bounds(self):
        with pytest.raises(ValueError, match="fraction"):
            SeederOutage(time=0.0, fraction=0.0).validate()

    def test_overrides_normalize_to_sorted_tuple(self):
        a = ScenarioSpec(name="x", config_overrides={"b": 2, "a": 1})
        b = ScenarioSpec(name="x", config_overrides={"a": 1, "b": 2})
        assert a == b
        assert a.overrides_dict() == {"a": 1, "b": 2}


class TestDictRoundTrip:
    @pytest.mark.parametrize("name", scenario_names())
    def test_catalog_round_trips_through_dict(self, name):
        spec = build_scenario(name, scale="tiny")
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_unknown_field_rejected(self):
        data = spec_to_dict(build_scenario("flash-crowd", scale="tiny"))
        data["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            spec_from_dict(data)

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"kind": "martian-invasion", "time": 0.0})

    def test_event_round_trip_preserves_fields(self):
        event = FlashCrowd(
            time=12.0, n_peers=7, over_seconds=3.0, video_id=1
        )
        assert event_from_dict(event.to_dict()) == event


class TestFileRoundTrip:
    @pytest.mark.parametrize("suffix", [".json", ".yaml"])
    def test_file_round_trip(self, tmp_path, suffix):
        if suffix == ".yaml":
            pytest.importorskip("yaml")
        spec = build_scenario("seeder-failure", scale="tiny")
        path = tmp_path / f"spec{suffix}"
        dump_scenario(spec, path)
        assert load_scenario(path) == spec

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text("x", encoding="utf-8")
        with pytest.raises(ValueError, match="file type"):
            load_scenario(path)

    def test_non_mapping_file_rejected(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(ValueError, match="mapping"):
            load_scenario(path)
