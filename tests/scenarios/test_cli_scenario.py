"""CLI round trip for ``python -m repro scenario list|run``."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.scenarios import scenario_names


class TestParser:
    def test_scenario_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["scenario", "run", "flash-crowd", "--scale", "tiny", "--no-save"]
        )
        assert args.name == "flash-crowd"
        assert args.scale == "tiny"
        assert args.no_save

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["scenario", "run", "flash-crowd", "--scale", "galactic"]
            )


class TestCommands:
    def test_list_names_every_catalog_entry(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_run_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "report.txt"
        code = main(
            [
                "--seed", "4",
                "scenario", "run", "isp-price-shock",
                "--scale", "tiny",
                "--duration", "30",
                "--output", str(out_path),
            ]
        )
        assert code == 0
        text = out_path.read_text(encoding="utf-8")
        assert "isp-price-shock" in text
        assert "cost-shock" in text
        assert text.strip() in capsys.readouterr().out

    def test_run_accepts_spec_file(self, tmp_path, capsys):
        from repro.scenarios import build_scenario, dump_scenario

        spec = build_scenario("capacity-ramp", scale="tiny").abridged(
            30.0, schedulers=("auction",)
        )
        path = tmp_path / "custom.json"
        dump_scenario(spec, path)
        assert main(["scenario", "run", str(path), "--no-save"]) == 0
        assert "capacity-ramp" in capsys.readouterr().out

    def test_run_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            main(["scenario", "run", "no-such-workload", "--no-save"])

    def test_scale_override_keeps_spec_warmup(self, tmp_path, capsys):
        """--scale on a spec file rescales only — warm-up is preserved."""
        import dataclasses

        from repro.scenarios import build_scenario, dump_scenario

        spec = dataclasses.replace(
            build_scenario("capacity-ramp", scale="bench"),
            schedulers=("auction",),
            duration_seconds=20.0,
            warmup_seconds=10.0,
        )
        path = tmp_path / "warm.json"
        dump_scenario(spec, path)
        assert main(
            ["scenario", "run", str(path), "--scale", "tiny", "--no-save"]
        ) == 0
        out = capsys.readouterr().out
        assert "scale=tiny" in out
        assert "(warmup 10s)" in out
