"""The public API surface: everything exported actually exists and works."""

from __future__ import annotations

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.sim",
    "repro.net",
    "repro.vod",
    "repro.p2p",
    "repro.metrics",
    "repro.experiments",
    "repro.scenarios",
    "repro.obs",
]


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} needs a docstring"
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert major.isdigit() and minor.isdigit() and patch.isdigit()

    def test_module_docstring_example_runs(self):
        """The usage snippet in the package docstring must stay true."""
        from repro import AuctionSolver, SchedulingProblem, solve_hungarian

        p = SchedulingProblem()
        p.set_capacity(100, 2)
        p.add_request(peer=1, chunk="c", valuation=5.0, candidates={100: 1.0})
        result = AuctionSolver().solve(p)
        assert result.welfare(p) == solve_hungarian(p).welfare(p)


class TestDocstrings:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_classes_documented(self, module_name):
        import inspect

        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"
