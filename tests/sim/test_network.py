"""Tests for the simulated message network."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.messages import BidMessage, BufferMapMessage, PriceUpdateMessage
from repro.sim.network import ConstantLatency, CostLatency, SimNetwork


def make_network(**kwargs):
    sim = Simulator()
    network = SimNetwork(sim, **kwargs)
    inbox = []
    network.register(2, inbox.append)
    return sim, network, inbox


class TestDelivery:
    def test_message_delivered_after_latency(self):
        sim, network, inbox = make_network(latency=ConstantLatency(0.25))
        network.send(BidMessage(src=1, dst=2, chunk="c", bid=3.0))
        assert inbox == []
        sim.run()
        assert len(inbox) == 1
        assert sim.now == 0.25
        assert inbox[0].bid == 3.0

    def test_fifo_for_equal_latency(self):
        sim, network, inbox = make_network(latency=ConstantLatency(0.1))
        for i in range(3):
            network.send(BidMessage(src=1, dst=2, chunk=f"c{i}", bid=float(i)))
        sim.run()
        assert [m.chunk for m in inbox] == ["c0", "c1", "c2"]

    def test_unknown_destination_dropped(self):
        sim, network, _ = make_network()
        assert network.send(BidMessage(src=1, dst=99, chunk="c", bid=1.0)) is False
        assert network.dropped["bid"] == 1

    def test_unregister_drops_in_flight(self):
        sim, network, inbox = make_network(latency=ConstantLatency(1.0))
        network.send(BidMessage(src=1, dst=2, chunk="c", bid=1.0))
        network.unregister(2)
        sim.run()
        assert inbox == []
        assert network.dropped["bid"] == 1

    def test_stats_structure(self):
        sim, network, _ = make_network()
        network.send(PriceUpdateMessage(src=1, dst=2, price=1.0))
        sim.run()
        stats = network.stats()
        assert stats["sent"] == {"priceupdate": 1}
        assert stats["delivered"] == {"priceupdate": 1}

    def test_message_kind_names(self):
        assert BidMessage(src=1, dst=2).kind == "bid"
        assert BufferMapMessage(src=1, dst=2).kind == "buffermap"


class TestFailureInjection:
    def test_full_loss_drops_everything(self):
        sim, network, inbox = make_network(
            loss_probability=1.0, rng=np.random.default_rng(0)
        )
        for _ in range(10):
            network.send(BidMessage(src=1, dst=2, chunk="c", bid=1.0))
        sim.run()
        assert inbox == []
        assert network.dropped["bid"] == 10

    def test_partial_loss_statistics(self):
        sim, network, inbox = make_network(
            loss_probability=0.5, rng=np.random.default_rng(1)
        )
        for i in range(200):
            network.send(BidMessage(src=1, dst=2, chunk=i, bid=1.0))
        sim.run()
        assert 60 < len(inbox) < 140  # ~100 expected

    def test_partition_blocks_and_heals(self):
        sim, network, inbox = make_network()
        network.partition(1, 2)
        assert network.send(BidMessage(src=1, dst=2, chunk="c", bid=1.0)) is False
        network.heal(1, 2)
        assert network.send(BidMessage(src=1, dst=2, chunk="c", bid=1.0)) is True
        sim.run()
        assert len(inbox) == 1

    def test_partition_is_bidirectional(self):
        sim = Simulator()
        network = SimNetwork(sim)
        got = []
        network.register(1, got.append)
        network.register(2, got.append)
        network.partition(1, 2)
        assert network.send(BidMessage(src=2, dst=1, chunk="c", bid=1.0)) is False


class TestLatencyModels:
    def test_constant_latency_validation(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)

    def test_cost_latency_scales_and_floors(self):
        model = CostLatency(lambda a, b: 5.0, seconds_per_cost_unit=0.1, floor=0.01)
        assert model(1, 2) == pytest.approx(0.5)
        floored = CostLatency(lambda a, b: 0.0, seconds_per_cost_unit=0.1, floor=0.01)
        assert floored(1, 2) == pytest.approx(0.01)

    def test_jitter_varies_delay_but_stays_positive(self):
        sim = Simulator()
        network = SimNetwork(
            sim,
            latency=ConstantLatency(1.0),
            jitter=0.5,
            rng=np.random.default_rng(2),
        )
        times = []
        network.register(2, lambda m: times.append(sim.now))
        for i in range(20):
            network.send(BidMessage(src=1, dst=2, chunk=i, bid=1.0))
        sim.run()
        assert len(set(round(t - int(t), 6) for t in times)) > 1
        assert all(t >= 0.5 - 1e-9 for t in times)

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SimNetwork(sim, loss_probability=1.5)
        with pytest.raises(ValueError):
            SimNetwork(sim, jitter=1.0)
