"""Property-based tests for the discrete-event engine."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


@settings(max_examples=60, deadline=None)
@given(
    delays=st.lists(st.floats(0.0, 1000.0, allow_nan=False), min_size=1, max_size=50)
)
def test_events_always_fire_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, (lambda d: (lambda: fired.append(d)))(delay))
    sim.run()
    assert fired == sorted(delays)
    assert sim.now == max(delays)


@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=30),
    horizon=st.floats(0.0, 120.0, allow_nan=False),
)
def test_run_until_splits_cleanly(delays, horizon):
    """Events ≤ horizon fire; later ones fire on the next run; none are lost."""
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, (lambda d: (lambda: fired.append(d)))(delay))
    sim.run(until=horizon)
    assert sorted(fired) == sorted(d for d in delays if d <= horizon)
    sim.run()
    assert sorted(fired) == sorted(delays)


@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(st.floats(0.0, 100.0), min_size=2, max_size=30),
    cancel_index=st.integers(0, 29),
)
def test_cancelled_events_never_fire(delays, cancel_index):
    sim = Simulator()
    fired = []
    handles = []
    for i, delay in enumerate(delays):
        handles.append(
            sim.schedule(delay, (lambda j: (lambda: fired.append(j)))(i))
        )
    victim = cancel_index % len(delays)
    handles[victim].cancel()
    sim.run()
    assert victim not in fired
    assert len(fired) == len(delays) - 1


@settings(max_examples=30, deadline=None)
@given(
    chain_depth=st.integers(1, 40),
    step=st.floats(0.001, 10.0),
)
def test_chained_scheduling_advances_clock(chain_depth, step):
    """Callbacks scheduling further callbacks walk the clock forward."""
    sim = Simulator()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < chain_depth:
            sim.schedule(step, tick)

    sim.schedule(step, tick)
    sim.run()
    assert count[0] == chain_depth
    assert abs(sim.now - chain_depth * step) < 1e-6 * chain_depth
