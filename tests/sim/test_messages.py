"""Tests for the protocol message types."""

from __future__ import annotations

import dataclasses

import pytest

from repro.sim.messages import (
    AcceptMessage,
    BidMessage,
    BufferMapMessage,
    EvictMessage,
    Message,
    PriceUpdateMessage,
    RejectMessage,
)


class TestEnvelope:
    def test_kind_derivation(self):
        cases = {
            BidMessage(src=1, dst=2): "bid",
            AcceptMessage(src=1, dst=2): "accept",
            RejectMessage(src=1, dst=2): "reject",
            EvictMessage(src=1, dst=2): "evict",
            PriceUpdateMessage(src=1, dst=2): "priceupdate",
            BufferMapMessage(src=1, dst=2): "buffermap",
        }
        for message, kind in cases.items():
            assert message.kind == kind

    def test_messages_are_frozen(self):
        message = BidMessage(src=1, dst=2, chunk="c", bid=3.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            message.bid = 5.0

    def test_bid_request_key(self):
        message = BidMessage(src=7, dst=2, chunk=("v", 3), bid=1.0)
        assert message.request == (7, ("v", 3))

    def test_reject_carries_price(self):
        message = RejectMessage(src=1, dst=2, chunk="c", price=4.5)
        assert message.price == 4.5

    def test_buffer_map_holds_chunks(self):
        message = BufferMapMessage(src=1, dst=2, chunks=frozenset({1, 2}))
        assert 1 in message.chunks

    def test_equality_by_value(self):
        a = PriceUpdateMessage(src=1, dst=2, price=3.0)
        b = PriceUpdateMessage(src=1, dst=2, price=3.0)
        assert a == b
        assert hash(a) == hash(b)
