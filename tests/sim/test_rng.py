"""Tests for deterministic RNG stream management."""

from __future__ import annotations

import numpy as np

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(42, "arrivals") == derive_seed(42, "arrivals")

    def test_different_names_differ(self):
        assert derive_seed(42, "arrivals") != derive_seed(42, "costs")

    def test_different_roots_differ(self):
        assert derive_seed(1, "arrivals") != derive_seed(2, "arrivals")


class TestRngRegistry:
    def test_same_seed_same_draws(self):
        a = RngRegistry(seed=7).stream("x").random(5)
        b = RngRegistry(seed=7).stream("x").random(5)
        assert np.allclose(a, b)

    def test_streams_are_cached(self):
        registry = RngRegistry(seed=1)
        assert registry.stream("x") is registry.stream("x")

    def test_streams_are_independent(self):
        """Draw order in one stream must not shift another stream."""
        reference = RngRegistry(seed=3)
        ref_draws = reference.stream("b").random(4)

        perturbed = RngRegistry(seed=3)
        perturbed.stream("a").random(1000)  # consume a lot from stream a
        assert np.allclose(perturbed.stream("b").random(4), ref_draws)

    def test_streams_method(self):
        registry = RngRegistry(seed=0)
        streams = registry.streams(["a", "b"])
        assert len(streams) == 2 and streams[0] is registry.stream("a")

    def test_fork_differs_from_parent(self):
        parent = RngRegistry(seed=9)
        child = parent.fork("peer-1")
        assert not np.allclose(
            parent.stream("x").random(4), child.stream("x").random(4)
        )

    def test_fork_deterministic(self):
        a = RngRegistry(seed=9).fork("peer-1").stream("x").random(3)
        b = RngRegistry(seed=9).fork("peer-1").stream("x").random(3)
        assert np.allclose(a, b)

    def test_reset_restores_initial_sequence(self):
        registry = RngRegistry(seed=5)
        first = registry.stream("x").random(3)
        registry.reset()
        assert np.allclose(registry.stream("x").random(3), first)

    def test_seed_property(self):
        assert RngRegistry(seed=11).seed == 11
