"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import (
    SimulationError,
    Simulator,
    Timer,
    run_callbacks_in_order,
)


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = run_callbacks_in_order(sim, [(3.0, "c"), (1.0, "a"), (2.0, "b")])
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_same_time_events_run_in_insertion_order(self):
        sim = Simulator()
        seen = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, (lambda t: (lambda: seen.append(t)))(tag))
        sim.run()
        assert seen == ["first", "second", "third"]

    def test_priority_breaks_time_ties(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append("low"), priority=5)
        sim.schedule(1.0, lambda: seen.append("high"), priority=-5)
        sim.run()
        assert seen == ["high", "low"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_the_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator(start_time=2.0)
        seen = []
        sim.call_soon(lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.0]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        seen = []

        def outer():
            sim.schedule(1.0, lambda: seen.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == ["inner"]
        assert sim.now == 2.0


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(5))
        executed = sim.run(until=3.0)
        assert executed == 1
        assert seen == [1]
        assert sim.now == 3.0  # clock advanced to the horizon
        sim.run()
        assert seen == [1, 5]

    def test_max_events_limits_execution(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.run(max_events=4) == 4
        assert sim.pending == 6

    def test_step_executes_exactly_one(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append("x"))
        sim.schedule(2.0, lambda: seen.append("y"))
        assert sim.step() is True
        assert seen == ["x"]
        assert sim.step() is True
        assert sim.step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_not_reentrant(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()

    def test_peek_next_time(self):
        sim = Simulator()
        assert sim.peek_next_time() is None
        sim.schedule(4.0, lambda: None)
        assert sim.peek_next_time() == 4.0


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(1.0, lambda: seen.append("no"))
        handle.cancel()
        sim.run()
        assert seen == []

    def test_handle_active_lifecycle(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.active
        sim.run()
        assert not handle.active

    def test_cancel_after_run_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        handle.cancel()  # must not raise

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_next_time() == 2.0


class TestTimer:
    def test_timer_fires_periodically(self):
        sim = Simulator()
        ticks = []
        timer = Timer(sim, interval=10.0, callback=lambda: ticks.append(sim.now))
        sim.run(until=35.0)
        assert ticks == [0.0, 10.0, 20.0, 30.0]
        assert timer.fires == 4

    def test_timer_start_delay(self):
        sim = Simulator()
        ticks = []
        Timer(sim, interval=5.0, callback=lambda: ticks.append(sim.now), start_delay=2.0)
        sim.run(until=13.0)
        assert ticks == [2.0, 7.0, 12.0]

    def test_timer_stop(self):
        sim = Simulator()
        ticks = []
        timer = Timer(sim, interval=1.0, callback=lambda: ticks.append(sim.now))

        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert ticks == [0.0, 1.0, 2.0]
        assert timer.stopped

    def test_timer_rejects_bad_interval(self):
        with pytest.raises(SimulationError):
            Timer(Simulator(), interval=0.0, callback=lambda: None)
