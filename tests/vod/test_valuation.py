"""Tests for the deadline-based valuation function."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vod.valuation import DeadlineValuation


class TestPaperProperties:
    def test_paper_range(self):
        """With α=2, β=1.2 and a 10-second window, v spans ≈ [0.8, 8]."""
        v = DeadlineValuation()
        assert 7.5 < v.value(0.1) < 8.5
        assert 0.75 < v.value(10.0) < 0.9

    def test_urgent_chunks_worth_more(self):
        v = DeadlineValuation()
        values = [v.value(d) for d in (0.1, 1.0, 5.0, 10.0)]
        assert values == sorted(values, reverse=True)

    def test_value_at_deadline_exceeds_max_cost(self):
        """v(0) ≈ 11 tops the costliest link (10) — the paper's design."""
        assert DeadlineValuation().max_value() > 10.0

    def test_overdue_clamped_to_deadline_value(self):
        v = DeadlineValuation()
        assert v.value(-5.0) == v.value(0.0)

    def test_min_value_of_horizon(self):
        v = DeadlineValuation()
        assert v.min_value(10.0) == v.value(10.0)


class TestVectorized:
    def test_matches_scalar(self):
        v = DeadlineValuation()
        deadlines = np.array([0.0, 0.5, 3.0, 10.0])
        vector = v.values(deadlines)
        for d, expected in zip(deadlines, vector):
            assert v.value(float(d)) == pytest.approx(float(expected))

    def test_clamps_negative_entries(self):
        v = DeadlineValuation()
        out = v.values(np.array([-1.0, 0.0]))
        assert out[0] == pytest.approx(out[1])


class TestValidation:
    def test_alpha_positive(self):
        with pytest.raises(ValueError):
            DeadlineValuation(alpha=0.0)

    def test_beta_above_one(self):
        with pytest.raises(ValueError):
            DeadlineValuation(beta=1.0)


@settings(max_examples=50, deadline=None)
@given(d1=st.floats(0, 100), d2=st.floats(0, 100))
def test_property_monotone_decreasing(d1, d2):
    v = DeadlineValuation()
    lo, hi = sorted((d1, d2))
    assert v.value(lo) >= v.value(hi)


@settings(max_examples=50, deadline=None)
@given(d=st.floats(-10, 100))
def test_property_always_positive_and_finite(d):
    value = DeadlineValuation().value(d)
    assert value > 0
    assert np.isfinite(value)
