"""Batched ``advance_to`` vs the per-chunk reference loop.

The batched path counts held-vs-missing chunks straight off the buffer
bitmap; the loop probes one chunk at a time.  Position, played count,
missed set, per-call stats and error behaviour must be identical.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vod.buffer import ChunkBuffer
from repro.vod.playback import PlaybackSession
from repro.vod.video import Video


def make_video(n_chunks=40):
    return Video(
        video_id=0,
        n_chunks=n_chunks,
        chunk_size_bytes=8 * 1024,
        bitrate_bps=8 * 1024 * 8,  # 1 chunk per second
    )


def make_pair(held_indices, start_position=0, start_time=0.0, n_chunks=40):
    """Two identical sessions over identically filled buffers."""
    sessions = []
    for _ in range(2):
        video = make_video(n_chunks)
        buffer = ChunkBuffer(video)
        for index in held_indices:
            buffer.add(index)
        sessions.append(
            PlaybackSession(
                video=video,
                buffer=buffer,
                start_time=start_time,
                start_position=start_position,
            )
        )
    return sessions


def assert_same_session(a, b):
    assert a.position == b.position
    assert a.played == b.played
    assert a.missed == b.missed
    assert a.finished == b.finished


class TestBatchedAdvanceEquivalence:
    @given(
        held=st.sets(st.integers(min_value=0, max_value=39), max_size=40),
        start=st.integers(min_value=0, max_value=39),
        steps=st.lists(
            st.floats(min_value=0.0, max_value=15.0), min_size=1, max_size=6
        ),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_identical_trajectories(self, held, start, steps):
        fast, slow = make_pair(held, start_position=start)
        now = 0.0
        for dt in steps:
            now += dt
            stats_fast = fast.advance_to(now)
            stats_slow = slow.advance_to_reference(now)
            assert (stats_fast.due, stats_fast.missed) == (
                stats_slow.due,
                stats_slow.missed,
            )
            assert_same_session(fast, slow)

    def test_runs_to_completion(self):
        fast, slow = make_pair({0, 1, 5, 6, 7, 20}, start_position=0)
        fast.advance_to(100.0)
        slow.advance_to_reference(100.0)
        assert fast.finished and slow.finished
        assert_same_session(fast, slow)

    def test_zero_elapsed_is_noop(self):
        fast, slow = make_pair({3}, start_position=2, start_time=5.0)
        stats = fast.advance_to(5.0)
        assert (stats.due, stats.missed) == (0, 0)
        slow.advance_to_reference(5.0)
        assert_same_session(fast, slow)

    def test_time_going_backwards_raises_in_both(self):
        fast, slow = make_pair(set())
        fast.advance_to(4.0)
        slow.advance_to_reference(4.0)
        with pytest.raises(ValueError):
            fast.advance_to(3.0)
        with pytest.raises(ValueError):
            slow.advance_to_reference(3.0)

    def test_missed_chunks_excluded_from_window(self):
        """The missed set feeds the request window; both paths must agree."""
        fast, slow = make_pair({1, 3}, start_position=0)
        fast.advance_to(5.0)
        slow.advance_to_reference(5.0)
        assert fast.missed == {0, 2, 4} == slow.missed
        window_fast = fast.buffer.window_array(fast.position, 10, exclude=fast.missed)
        window_slow = slow.buffer.window_array(slow.position, 10, exclude=slow.missed)
        assert np.array_equal(window_fast, window_slow)


class TestBufferBatchInsert:
    def test_add_batch_matches_loop(self):
        video = make_video()
        batch, loop = ChunkBuffer(video), ChunkBuffer(video)
        indices = [3, 1, 3, 7, 1, 0, 39]
        added_batch = batch.add_batch(np.asarray(indices))
        added_loop = loop.add_many(indices)
        assert added_batch == added_loop == 5
        assert np.array_equal(batch.mask, loop.mask)
        assert len(batch) == len(loop)

    def test_add_batch_counts_only_new(self):
        video = make_video()
        buffer = ChunkBuffer(video)
        buffer.fill_range(0, 10)
        assert buffer.add_batch(np.array([5, 9, 10, 11])) == 2
        assert len(buffer) == 12

    def test_add_batch_out_of_range_raises(self):
        buffer = ChunkBuffer(make_video())
        with pytest.raises(IndexError):
            buffer.add_batch(np.array([0, 40]))
        with pytest.raises(IndexError):
            buffer.add_batch(np.array([-1]))

    def test_add_batch_empty_is_noop(self):
        buffer = ChunkBuffer(make_video())
        assert buffer.add_batch(np.empty(0, dtype=np.int64)) == 0
        assert len(buffer) == 0

    def test_capacity_capped_buffer_falls_back_to_eviction_loop(self):
        video = make_video()
        capped_batch = ChunkBuffer(video, capacity_chunks=3)
        capped_loop = ChunkBuffer(video, capacity_chunks=3)
        indices = [0, 1, 2, 3, 4]
        capped_batch.add_batch(np.asarray(indices), protect_from=4)
        capped_loop.add_many(indices, protect_from=4)
        assert np.array_equal(capped_batch.mask, capped_loop.mask)
        assert len(capped_batch) == 3
