"""Tests for the chunk buffer and window of interest."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vod.buffer import ChunkBuffer
from repro.vod.video import Video


def make_video(n_chunks=100):
    return Video(video_id=0, n_chunks=n_chunks, chunk_size_bytes=8192, bitrate_bps=81920)


class TestContent:
    def test_add_and_holds(self):
        buffer = ChunkBuffer(make_video())
        assert buffer.add(5)
        assert buffer.holds(5)
        assert 5 in buffer
        assert len(buffer) == 1

    def test_duplicate_add_returns_false(self):
        buffer = ChunkBuffer(make_video())
        buffer.add(5)
        assert buffer.add(5) is False
        assert len(buffer) == 1

    def test_out_of_range_rejected(self):
        buffer = ChunkBuffer(make_video(10))
        with pytest.raises(IndexError):
            buffer.add(10)
        with pytest.raises(IndexError):
            buffer.add(-1)

    def test_add_many_counts_new(self):
        buffer = ChunkBuffer(make_video())
        assert buffer.add_many([1, 2, 3]) == 3
        assert buffer.add_many([3, 4]) == 1

    def test_fill_range(self):
        buffer = ChunkBuffer(make_video(50))
        buffer.fill_range(10, 20)
        assert all(buffer.holds(i) for i in range(10, 20))
        assert not buffer.holds(9)
        with pytest.raises(ValueError):
            buffer.fill_range(40, 60)

    def test_bitmap_snapshot_immutable(self):
        buffer = ChunkBuffer(make_video())
        buffer.add(1)
        snapshot = buffer.bitmap()
        buffer.add(2)
        assert snapshot == frozenset({1})


class TestCapacityEviction:
    def test_evicts_furthest_behind_position(self):
        buffer = ChunkBuffer(make_video(), capacity_chunks=3)
        buffer.add(1, protect_from=10)
        buffer.add(5, protect_from=10)
        buffer.add(12, protect_from=10)
        buffer.add(15, protect_from=10)  # over capacity: chunk 1 evicted
        assert not buffer.holds(1)
        assert buffer.holds(5) and buffer.holds(12) and buffer.holds(15)

    def test_evicts_furthest_ahead_when_nothing_behind(self):
        buffer = ChunkBuffer(make_video(), capacity_chunks=2)
        buffer.add(20, protect_from=10)
        buffer.add(30, protect_from=10)
        buffer.add(25, protect_from=10)
        assert not buffer.holds(30)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ChunkBuffer(make_video(), capacity_chunks=0)


class TestWindowOfInterest:
    def test_window_skips_held(self):
        buffer = ChunkBuffer(make_video())
        buffer.add(11)
        assert buffer.window_of_interest(10, 4) == [10, 12, 13]

    def test_window_clipped_at_video_end(self):
        buffer = ChunkBuffer(make_video(20))
        assert buffer.window_of_interest(18, 10) == [18, 19]

    def test_window_respects_exclusions(self):
        buffer = ChunkBuffer(make_video())
        assert buffer.window_of_interest(0, 3, exclude={1}) == [0, 2]

    def test_window_negative_rejected(self):
        buffer = ChunkBuffer(make_video())
        with pytest.raises(ValueError):
            buffer.window_of_interest(0, -1)

    def test_contiguous_run(self):
        buffer = ChunkBuffer(make_video())
        buffer.add_many([5, 6, 7, 9])
        assert buffer.contiguous_from(5) == 3
        assert buffer.contiguous_from(8) == 0

    def test_completion_fraction(self):
        buffer = ChunkBuffer(make_video(10))
        buffer.add_many(range(5))
        assert buffer.completion() == 0.5


class TestMaskView:
    def test_mask_is_live_and_zero_copy(self):
        buffer = ChunkBuffer(make_video(10))
        mask = buffer.mask
        assert mask.dtype == bool and mask.shape == (10,)
        assert not mask.any()
        buffer.add(3)
        assert mask[3]  # same storage, no snapshot
        assert buffer.mask is mask

    def test_mask_agrees_with_bitmap(self):
        buffer = ChunkBuffer(make_video(20))
        buffer.add_many([2, 5, 11])
        import numpy as np

        assert set(np.nonzero(buffer.mask)[0].tolist()) == set(buffer.bitmap())

    def test_mask_tracks_eviction(self):
        buffer = ChunkBuffer(make_video(), capacity_chunks=2)
        buffer.add(1, protect_from=10)
        buffer.add(2, protect_from=10)
        buffer.add(3, protect_from=10)  # evicts 1
        assert not buffer.mask[1]
        assert buffer.mask[2] and buffer.mask[3]
        assert len(buffer) == 2

    def test_window_array_matches_list(self):
        import numpy as np

        buffer = ChunkBuffer(make_video(30))
        buffer.add_many([4, 6, 9])
        arr = buffer.window_array(3, 8, exclude={5})
        assert arr.dtype == np.int64
        assert arr.tolist() == buffer.window_of_interest(3, 8, exclude={5})

    def test_fill_range_updates_count_idempotently(self):
        buffer = ChunkBuffer(make_video(50))
        buffer.add(12)
        buffer.fill_range(10, 20)
        buffer.fill_range(15, 25)
        assert len(buffer) == 15
        assert buffer.completion() == pytest.approx(15 / 50)


@settings(max_examples=40, deadline=None)
@given(
    held=st.sets(st.integers(0, 49), max_size=30),
    position=st.integers(0, 49),
    window=st.integers(0, 20),
)
def test_property_window_disjoint_from_held(held, position, window):
    buffer = ChunkBuffer(make_video(50))
    buffer.add_many(held)
    wanted = buffer.window_of_interest(position, window)
    assert set(wanted).isdisjoint(held)
    assert all(position <= i < min(50, position + window) for i in wanted)
    assert wanted == sorted(wanted)
