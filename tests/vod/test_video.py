"""Tests for the video catalog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.vod.video import Video, VideoCatalog


class TestVideo:
    def test_paper_chunk_timing(self):
        """20 MB video, 8 KB chunks, 640 Kbps ⇒ 2560 chunks, 10 chunks/s."""
        video = Video(
            video_id=0,
            n_chunks=2560,
            chunk_size_bytes=8 * 1024,
            bitrate_bps=640 * 1000,
        )
        assert video.size_bytes == 20 * 1024 * 1024
        assert video.chunks_per_second == pytest.approx(9.765625)
        assert video.duration_seconds == pytest.approx(2560 / 9.765625)

    def test_chunk_id_bounds(self):
        video = Video(video_id=3, n_chunks=10, chunk_size_bytes=100, bitrate_bps=800)
        assert video.chunk_id(0) == (3, 0)
        assert video.chunk_id(9) == (3, 9)
        with pytest.raises(IndexError):
            video.chunk_id(10)
        with pytest.raises(IndexError):
            video.chunk_id(-1)

    def test_playback_offset_monotone(self):
        video = Video(video_id=0, n_chunks=100, chunk_size_bytes=1000, bitrate_bps=8000)
        offsets = [video.chunk_playback_offset(i) for i in range(5)]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Video(video_id=0, n_chunks=0, chunk_size_bytes=1, bitrate_bps=1)
        with pytest.raises(ValueError):
            Video(video_id=0, n_chunks=1, chunk_size_bytes=0, bitrate_bps=1)


class TestVideoCatalog:
    def test_paper_default_sizes(self):
        catalog = VideoCatalog.paper_default(n_videos=5)
        assert len(catalog) == 5
        assert catalog[0].n_chunks == 2560

    def test_size_jitter_varies_chunk_counts(self):
        catalog = VideoCatalog.paper_default(
            n_videos=20, size_jitter=0.3, rng=np.random.default_rng(0)
        )
        counts = {v.n_chunks for v in catalog}
        assert len(counts) > 1

    def test_size_jitter_requires_rng(self):
        with pytest.raises(ValueError):
            VideoCatalog.paper_default(n_videos=2, size_jitter=0.1)

    def test_duplicate_ids_rejected(self):
        video = Video(video_id=0, n_chunks=1, chunk_size_bytes=1, bitrate_bps=1)
        with pytest.raises(ValueError):
            VideoCatalog([video, video])

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            VideoCatalog([])

    def test_lookup_and_iteration(self):
        catalog = VideoCatalog.paper_default(n_videos=3)
        assert catalog.video_ids() == [0, 1, 2]
        assert 1 in catalog and 7 not in catalog
        assert sum(1 for _ in catalog) == 3

    def test_total_chunks(self):
        catalog = VideoCatalog.paper_default(n_videos=4)
        assert catalog.total_chunks() == 4 * 2560
