"""Tests for Zipf-Mandelbrot popularity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.vod.popularity import ZipfMandelbrot


class TestDistribution:
    def test_pmf_sums_to_one(self):
        dist = ZipfMandelbrot(n=100)
        assert dist.pmf().sum() == pytest.approx(1.0)

    def test_pmf_strictly_decreasing(self):
        pmf = ZipfMandelbrot(n=50).pmf()
        assert np.all(np.diff(pmf) < 0)

    def test_paper_parameters(self):
        """p(i) = (1/(i+q)^α)/Σ with α=0.78, q=4 — check an explicit value."""
        dist = ZipfMandelbrot(n=100, alpha=0.78, q=4.0)
        ranks = np.arange(1, 101, dtype=float)
        weights = 1.0 / np.power(ranks + 4.0, 0.78)
        assert dist.probability(0) == pytest.approx(weights[0] / weights.sum())

    def test_larger_q_flattens(self):
        sharp = ZipfMandelbrot(n=100, q=0.0)
        flat = ZipfMandelbrot(n=100, q=50.0)
        assert sharp.probability(0) > flat.probability(0)

    def test_probability_bounds_checked(self):
        dist = ZipfMandelbrot(n=10)
        with pytest.raises(IndexError):
            dist.probability(10)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfMandelbrot(n=0)
        with pytest.raises(ValueError):
            ZipfMandelbrot(n=5, alpha=0.0)
        with pytest.raises(ValueError):
            ZipfMandelbrot(n=5, q=-1.0)


class TestSampling:
    def test_samples_in_range(self, rng):
        dist = ZipfMandelbrot(n=20)
        samples = dist.sample_many(rng, 1000)
        assert samples.min() >= 0
        assert samples.max() < 20

    def test_empirical_matches_pmf(self, rng):
        dist = ZipfMandelbrot(n=10)
        samples = dist.sample_many(rng, 50000)
        empirical = np.bincount(samples, minlength=10) / 50000
        assert np.abs(empirical - dist.pmf()).max() < 0.01

    def test_single_sample(self, rng):
        dist = ZipfMandelbrot(n=5)
        assert 0 <= dist.sample(rng) < 5

    def test_expected_rank_reflects_skew(self):
        skewed = ZipfMandelbrot(n=100, alpha=2.0, q=0.0)
        flat = ZipfMandelbrot(n=100, alpha=0.3, q=20.0)
        assert skewed.expected_rank() < flat.expected_rank()
