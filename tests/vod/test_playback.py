"""Tests for playback sessions and miss accounting."""

from __future__ import annotations

import pytest

from repro.vod.buffer import ChunkBuffer
from repro.vod.playback import PlaybackSession
from repro.vod.video import Video


def make_session(n_chunks=100, start_time=0.0, start_position=0, prefill=()):
    # 1 chunk per second for easy arithmetic.
    video = Video(video_id=0, n_chunks=n_chunks, chunk_size_bytes=1000, bitrate_bps=8000)
    buffer = ChunkBuffer(video)
    for index in prefill:
        buffer.add(index)
    session = PlaybackSession(
        video, buffer, start_time=start_time, start_position=start_position
    )
    return session, buffer


class TestTiming:
    def test_deadlines_linear_in_index(self):
        session, _ = make_session(start_time=10.0)
        assert session.deadline_of(0) == 10.0
        assert session.deadline_of(5) == 15.0

    def test_deadline_accounts_for_start_position(self):
        session, _ = make_session(start_time=10.0, start_position=20)
        assert session.deadline_of(20) == 10.0
        assert session.deadline_of(25) == 15.0

    def test_seconds_to_deadline(self):
        session, _ = make_session()
        assert session.seconds_to_deadline(5, now=2.0) == pytest.approx(3.0)
        assert session.seconds_to_deadline(1, now=2.0) == pytest.approx(-1.0)

    def test_due_position_clamps_to_video_length(self):
        session, _ = make_session(n_chunks=10)
        assert session.due_position(100.0) == 10

    def test_due_position_before_start(self):
        session, _ = make_session(start_time=50.0, start_position=3)
        assert session.due_position(10.0) == 3

    def test_end_time(self):
        session, _ = make_session(n_chunks=30, start_time=5.0, start_position=10)
        assert session.end_time == pytest.approx(25.0)


class TestAdvance:
    def test_held_chunks_play_missing_chunks_miss(self):
        session, _ = make_session(prefill=[0, 2])
        stats = session.advance_to(3.0)  # chunks 0,1,2 due
        assert stats.due == 3
        assert stats.missed == 1
        assert session.missed == {1}
        assert session.played == 2

    def test_advance_is_incremental(self):
        session, buffer = make_session(prefill=[0, 1])
        session.advance_to(2.0)
        buffer.add(2)
        stats = session.advance_to(3.0)
        assert stats.due == 1 and stats.missed == 0

    def test_time_backwards_rejected(self):
        session, _ = make_session()
        session.advance_to(5.0)
        with pytest.raises(ValueError):
            session.advance_to(4.0)

    def test_finished_after_last_chunk(self):
        session, _ = make_session(n_chunks=5, prefill=range(5))
        session.advance_to(5.0)
        assert session.finished
        assert session.remaining_chunks() == 0

    def test_miss_rate_lifetime(self):
        session, _ = make_session(n_chunks=10, prefill=[0, 1, 2, 3, 4])
        session.advance_to(10.0)
        assert session.miss_rate() == pytest.approx(0.5)

    def test_slot_stats_miss_rate(self):
        session, _ = make_session(prefill=[0])
        stats = session.advance_to(2.0)
        assert stats.miss_rate == pytest.approx(0.5)

    def test_empty_advance_zero_stats(self):
        session, _ = make_session(start_time=10.0)
        stats = session.advance_to(5.0) if False else session.advance_to(10.0)
        assert stats.due == 0 and stats.missed == 0 and stats.miss_rate == 0.0

    def test_start_position_validation(self):
        video = Video(video_id=0, n_chunks=10, chunk_size_bytes=1, bitrate_bps=8)
        buffer = ChunkBuffer(video)
        with pytest.raises(ValueError):
            PlaybackSession(video, buffer, start_time=0.0, start_position=11)
