"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import SchedulingProblem


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_problem() -> SchedulingProblem:
    """A hand-built 4-request / 2-uploader instance with a known optimum.

    Uploaders: 100 (B=2), 200 (B=1).
    Requests (peer, chunk, v, candidates{uploader: cost}):
      r0: (1, a, 8.0, {100: 1.0, 200: 2.0})   best edge 7.0 at 100
      r1: (2, b, 6.0, {100: 1.0})             edge 5.0 at 100
      r2: (3, c, 5.0, {100: 4.0, 200: 1.0})   edges 1.0 / 4.0
      r3: (4, d, 2.0, {200: 3.0})             edge -1.0 (never worth serving)

    Optimum: r0→100, r1→100, r2→200; r3 unserved; welfare = 7+5+4 = 16.
    """
    p = SchedulingProblem()
    p.set_capacity(100, 2)
    p.set_capacity(200, 1)
    p.add_request(peer=1, chunk="a", valuation=8.0, candidates={100: 1.0, 200: 2.0})
    p.add_request(peer=2, chunk="b", valuation=6.0, candidates={100: 1.0})
    p.add_request(peer=3, chunk="c", valuation=5.0, candidates={100: 4.0, 200: 1.0})
    p.add_request(peer=4, chunk="d", valuation=2.0, candidates={200: 3.0})
    return p


SMALL_PROBLEM_OPTIMUM = 16.0


@pytest.fixture
def small_problem_optimum() -> float:
    return SMALL_PROBLEM_OPTIMUM
