"""Tests for the scheduling-problem model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import ChunkRequest, SchedulingProblem, random_problem


class TestConstruction:
    def test_capacity_declaration(self):
        p = SchedulingProblem()
        p.set_capacity(1, 3)
        assert p.capacity_of(1) == 3
        assert p.total_capacity() == 3

    def test_capacity_validation(self):
        p = SchedulingProblem()
        with pytest.raises(ValueError):
            p.set_capacity(1, -1)
        with pytest.raises(ValueError):
            p.set_capacity(1, 2.5)

    def test_add_request_returns_index(self):
        p = SchedulingProblem()
        p.set_capacity(10, 1)
        assert p.add_request(1, "a", 5.0, {10: 1.0}) == 0
        assert p.add_request(1, "b", 5.0, {10: 1.0}) == 1

    def test_duplicate_request_rejected(self):
        p = SchedulingProblem()
        p.set_capacity(10, 1)
        p.add_request(1, "a", 5.0, {10: 1.0})
        with pytest.raises(ValueError):
            p.add_request(1, "a", 6.0, {10: 2.0})

    def test_self_upload_rejected(self):
        p = SchedulingProblem()
        p.set_capacity(1, 1)
        with pytest.raises(ValueError):
            p.add_request(1, "a", 5.0, {1: 0.5})

    def test_unknown_uploader_rejected(self):
        p = SchedulingProblem()
        with pytest.raises(ValueError):
            p.add_request(1, "a", 5.0, {99: 1.0})

    def test_bad_cost_rejected(self):
        p = SchedulingProblem()
        p.set_capacity(10, 1)
        with pytest.raises(ValueError):
            p.add_request(1, "a", 5.0, {10: -1.0})
        with pytest.raises(ValueError):
            p.add_request(1, "b", 5.0, {10: float("inf")})

    def test_nonfinite_valuation_rejected(self):
        with pytest.raises(ValueError):
            ChunkRequest(peer=1, chunk="a", valuation=float("nan"))

    def test_empty_candidates_allowed(self):
        p = SchedulingProblem()
        index = p.add_request(1, "a", 5.0, {})
        assert len(p.candidates_of(index)) == 0


class TestAccessors:
    def test_edge_values(self, small_problem):
        assert small_problem.edge_value(0, 100) == pytest.approx(7.0)
        assert small_problem.edge_value(0, 200) == pytest.approx(6.0)
        assert small_problem.edge_value(3, 200) == pytest.approx(-1.0)

    def test_cost_of_edge_missing_raises(self, small_problem):
        with pytest.raises(KeyError):
            small_problem.cost_of_edge(1, 200)

    def test_counts(self, small_problem):
        assert small_problem.n_requests == 4
        assert small_problem.n_edges() == 6
        assert small_problem.total_capacity() == 3
        assert small_problem.uploaders() == [100, 200]

    def test_max_edge_value(self, small_problem):
        assert small_problem.max_edge_value() == pytest.approx(7.0)

    def test_describe_mentions_sizes(self, small_problem):
        text = small_problem.describe()
        assert "requests=4" in text and "uploaders=2" in text


class TestWelfare:
    def test_welfare_of_known_assignment(self, small_problem):
        assignment = {0: 100, 1: 100, 2: 200, 3: None}
        assert small_problem.welfare(assignment) == pytest.approx(16.0)

    def test_unserved_contributes_zero(self, small_problem):
        assert small_problem.welfare({0: None, 1: None, 2: None, 3: None}) == 0.0


class TestDenseView:
    def test_shapes_and_padding(self, small_problem):
        dense = small_problem.dense()
        assert dense.values.shape == (4, 2)
        assert dense.uploader_index.shape == (4, 2)
        # Request 1 has one candidate: second column padded.
        assert dense.uploader_index[1, 1] == -1
        assert dense.values[1, 1] == -np.inf

    def test_values_match_edges(self, small_problem):
        dense = small_problem.dense()
        uploader_ids = dense.uploaders
        for r in range(4):
            for k in range(dense.max_candidates):
                idx = dense.uploader_index[r, k]
                if idx < 0:
                    continue
                uploader = int(uploader_ids[idx])
                assert dense.values[r, k] == pytest.approx(
                    small_problem.edge_value(r, uploader)
                )

    def test_cached_and_invalidated(self, small_problem):
        first = small_problem.dense()
        assert small_problem.dense() is first
        small_problem.set_capacity(300, 1)
        assert small_problem.dense() is not first

    def test_capacity_alignment(self, small_problem):
        dense = small_problem.dense()
        for uploader, capacity in zip(dense.uploaders, dense.capacity):
            assert small_problem.capacity_of(int(uploader)) == int(capacity)


class TestRandomProblem:
    def test_respects_sizes(self, rng):
        p = random_problem(rng, n_requests=30, n_uploaders=7, max_candidates=4)
        assert p.n_requests == 30
        assert len(p.uploaders()) == 7
        for r in range(30):
            assert 1 <= len(p.candidates_of(r)) <= 4

    def test_integer_weights_mode(self, rng):
        p = random_problem(rng, n_requests=20, integer_weights=True)
        for r in range(20):
            assert float(p.request(r).valuation).is_integer()
            for c in p.costs_of(r):
                assert float(c).is_integer()

    def test_deterministic_for_seed(self):
        a = random_problem(np.random.default_rng(5), n_requests=10)
        b = random_problem(np.random.default_rng(5), n_requests=10)
        assert a.welfare({r: None for r in range(10)}) == 0.0
        for r in range(10):
            assert a.request(r).valuation == b.request(r).valuation
            assert np.array_equal(a.candidates_of(r), b.candidates_of(r))
