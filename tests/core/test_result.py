"""Tests for ScheduleResult and SolverStats."""

from __future__ import annotations

import pytest

from repro.core.result import ScheduleResult, SolverStats


class TestScheduleResult:
    def test_counts(self, small_problem):
        result = ScheduleResult(assignment={0: 100, 1: 100, 2: 200, 3: None})
        assert result.n_served() == 3
        assert result.n_unserved() == 1

    def test_welfare(self, small_problem):
        result = ScheduleResult(assignment={0: 100, 1: 100, 2: 200, 3: None})
        assert result.welfare(small_problem) == pytest.approx(16.0)

    def test_served_edges_iterator(self, small_problem):
        result = ScheduleResult(assignment={0: 100, 1: None, 2: None, 3: None})
        edges = list(result.served_edges(small_problem))
        assert len(edges) == 1
        index, downstream, chunk, uploader, utility = edges[0]
        assert (index, downstream, chunk, uploader) == (0, 1, "a", 100)
        assert utility == pytest.approx(7.0)

    def test_uploader_loads(self, small_problem):
        result = ScheduleResult(assignment={0: 100, 1: 100, 2: 200, 3: None})
        assert result.uploader_loads() == {100: 2, 200: 1}

    def test_check_feasible_passes(self, small_problem):
        ScheduleResult(assignment={0: 100, 1: 100, 2: 200, 3: None}).check_feasible(
            small_problem
        )

    def test_check_feasible_rejects_overload(self, small_problem):
        result = ScheduleResult(assignment={0: 200, 1: None, 2: 200, 3: None})
        with pytest.raises(AssertionError):
            result.check_feasible(small_problem)  # 200 has B=1

    def test_check_feasible_rejects_non_candidate(self, small_problem):
        result = ScheduleResult(assignment={0: 100, 1: 200, 2: None, 3: None})
        with pytest.raises(AssertionError):
            result.check_feasible(small_problem)  # r1 has no edge to 200

    def test_check_feasible_rejects_missing_requests(self, small_problem):
        result = ScheduleResult(assignment={0: 100})
        with pytest.raises(AssertionError):
            result.check_feasible(small_problem)

    def test_summary_text(self, small_problem):
        result = ScheduleResult(assignment={0: 100, 1: None, 2: None, 3: None})
        text = result.summary(small_problem)
        assert "welfare=7.000" in text
        assert "served=1/4" in text


class TestSolverStats:
    def test_merge_adds_counters(self):
        a = SolverStats(rounds=1, bids_submitted=5, converged=True)
        b = SolverStats(rounds=2, bids_submitted=7, evictions=1, converged=True)
        merged = a.merge(b)
        assert merged.rounds == 3
        assert merged.bids_submitted == 12
        assert merged.evictions == 1

    def test_merge_propagates_non_convergence(self):
        a = SolverStats(converged=True)
        b = SolverStats(converged=False)
        assert not a.merge(b).converged
