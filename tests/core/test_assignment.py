"""Tests for the transportation → assignment conversion (Fig. 1)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import optimize

from repro.core.assignment import FORBIDDEN, expand_to_assignment
from repro.core.exact import solve_hungarian
from repro.core.problem import SchedulingProblem, random_problem


class TestExpansion:
    def test_slot_counts_match_capacity(self, small_problem):
        expansion = expand_to_assignment(small_problem)
        assert expansion.n_real_slots == small_problem.total_capacity()
        # Uploader 100 owns 2 slots, 200 owns 1.
        owners = list(expansion.slot_owner)
        assert owners.count(100) == 2
        assert owners.count(200) == 1

    def test_matrix_shape_includes_dummies(self, small_problem):
        expansion = expand_to_assignment(small_problem)
        n, s = small_problem.n_requests, small_problem.total_capacity()
        assert expansion.weights.shape == (n, s + n)

    def test_slot_copies_share_edge_weight(self, small_problem):
        """Fig. 1: each of B(u) slot copies carries the original weight."""
        expansion = expand_to_assignment(small_problem)
        slots_100 = [i for i, o in enumerate(expansion.slot_owner) if o == 100]
        for r in range(small_problem.n_requests):
            weights = {expansion.weights[r, s] for s in slots_100}
            assert len(weights) == 1  # identical on all copies

    def test_dummy_column_is_own_outside_option(self, small_problem):
        expansion = expand_to_assignment(small_problem)
        s = expansion.n_real_slots
        for r in range(small_problem.n_requests):
            assert expansion.weights[r, s + r] == 0.0
            for other in range(small_problem.n_requests):
                if other != r:
                    assert expansion.weights[r, s + other] == FORBIDDEN

    def test_absent_edges_forbidden(self, small_problem):
        expansion = expand_to_assignment(small_problem)
        # Request 1 has no edge to uploader 200 (slot index 2).
        slot_200 = [i for i, o in enumerate(expansion.slot_owner) if o == 200][0]
        assert expansion.weights[1, slot_200] == FORBIDDEN


class TestRoundTrip:
    def test_matching_converts_back(self, small_problem, small_problem_optimum):
        expansion = expand_to_assignment(small_problem)
        rows, cols = optimize.linear_sum_assignment(expansion.weights, maximize=True)
        result = expansion.to_result(rows, cols)
        result.check_feasible(small_problem)
        assert result.welfare(small_problem) == pytest.approx(small_problem_optimum)

    def test_negative_edges_never_selected(self, rng):
        """The dummy (0) column dominates any negative edge."""
        for _ in range(10):
            p = random_problem(
                rng, n_requests=20, n_uploaders=5, valuation_range=(0.0, 3.0),
                cost_range=(2.0, 10.0),  # most edges negative
            )
            result = solve_hungarian(p)
            for r, uploader in result.assignment.items():
                if uploader is not None:
                    assert p.edge_value(r, uploader) >= 0.0

    def test_equivalence_with_capacity_scarcity(self, rng):
        """Expansion optimum == direct ILP optimum on scarce instances."""
        p = random_problem(rng, n_requests=40, n_uploaders=3, capacity_range=(1, 2))
        hungarian = solve_hungarian(p).welfare(p)
        # Independent check through the LP relaxation.
        from repro.core.exact import solve_lp_relaxation

        assert hungarian == pytest.approx(solve_lp_relaxation(p).value, abs=1e-6)

    def test_empty_problem(self):
        p = SchedulingProblem()
        p.set_capacity(1, 2)
        expansion = expand_to_assignment(p)
        assert expansion.weights.shape == (0, 2)
        result = solve_hungarian(p)
        assert result.assignment == {}
