"""Tests for the exact reference solvers (oracles)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exact import (
    solve_hungarian,
    solve_lp_relaxation,
    solve_min_cost_flow,
)
from repro.core.problem import SchedulingProblem, random_problem


class TestHungarian:
    def test_known_optimum(self, small_problem, small_problem_optimum):
        result = solve_hungarian(small_problem)
        result.check_feasible(small_problem)
        assert result.welfare(small_problem) == pytest.approx(small_problem_optimum)

    def test_leaves_negative_requests_unserved(self, small_problem):
        assert solve_hungarian(small_problem).assignment[3] is None


class TestLPRelaxation:
    def test_integral_and_matches_hungarian(self, rng):
        for _ in range(8):
            p = random_problem(rng, n_requests=30, n_uploaders=6)
            lp = solve_lp_relaxation(p)
            assert lp.integral, f"fractional LP vertex: {lp.max_fractionality}"
            assert lp.value == pytest.approx(
                solve_hungarian(p).welfare(p), abs=1e-6
            )

    def test_lp_result_feasible(self, rng):
        p = random_problem(rng, n_requests=25, n_uploaders=4, capacity_range=(1, 2))
        lp = solve_lp_relaxation(p)
        lp.result.check_feasible(p)

    def test_empty_edges(self):
        p = SchedulingProblem()
        p.set_capacity(1, 1)
        p.add_request(2, "a", 5.0, {})
        lp = solve_lp_relaxation(p)
        assert lp.value == 0.0
        assert lp.integral

    def test_known_optimum(self, small_problem, small_problem_optimum):
        assert solve_lp_relaxation(small_problem).value == pytest.approx(
            small_problem_optimum
        )


class TestMinCostFlow:
    def test_known_optimum(self, small_problem, small_problem_optimum):
        result = solve_min_cost_flow(small_problem)
        result.check_feasible(small_problem)
        assert result.welfare(small_problem) == pytest.approx(small_problem_optimum)

    def test_exact_on_integer_weights(self, rng):
        for _ in range(8):
            p = random_problem(rng, n_requests=30, n_uploaders=5, integer_weights=True)
            flow = solve_min_cost_flow(p, scale=1)
            assert flow.welfare(p) == pytest.approx(
                solve_hungarian(p).welfare(p), abs=1e-9
            )

    def test_close_on_float_weights(self, rng):
        p = random_problem(rng, n_requests=40, n_uploaders=6)
        flow = solve_min_cost_flow(p, scale=10**6)
        hungarian = solve_hungarian(p).welfare(p)
        assert flow.welfare(p) == pytest.approx(hungarian, abs=1e-3)


class TestOraclesAgree:
    @pytest.mark.parametrize("seed", range(6))
    def test_three_way_agreement(self, seed):
        rng = np.random.default_rng(seed)
        p = random_problem(
            rng,
            n_requests=int(rng.integers(5, 50)),
            n_uploaders=int(rng.integers(2, 8)),
            capacity_range=(1, 3),
        )
        hungarian = solve_hungarian(p).welfare(p)
        lp = solve_lp_relaxation(p).value
        flow = solve_min_cost_flow(p).welfare(p)
        assert hungarian == pytest.approx(lp, abs=1e-6)
        assert hungarian == pytest.approx(flow, abs=1e-3)
