"""Array-native ScheduleResult: dict views round-trip the arrays exactly.

The result's source of truth is numpy columns; the historical dict API
is a lazy view.  These tests pin the round trip both ways (dicts →
arrays → dict views, arrays → dict views → arrays), the array
accessors, and the mutation write-back that keeps in-place edits of a
dict view (used by some tests and tooling) visible to the array paths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.auction import AuctionSolver
from repro.core.problem import random_problem
from repro.core.result import ScheduleResult, SolverStats

assignments = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=500)),
    max_size=40,
)
price_maps = st.dictionaries(
    st.integers(min_value=0, max_value=500),
    st.floats(min_value=0.0, max_value=100.0),
    max_size=20,
)


class TestDictRoundTrip:
    @given(uploads=assignments, prices=price_maps)
    @settings(max_examples=150, deadline=None)
    def test_dict_constructor_round_trips(self, uploads, prices):
        assignment = dict(enumerate(uploads))
        etas = {r: float(r) * 0.5 for r in assignment}
        result = ScheduleResult(assignment=assignment, prices=prices, etas=etas)
        # Dict views reproduce the inputs exactly (values and order).
        assert result.assignment == assignment
        assert list(result.assignment) == list(assignment)
        assert result.prices == prices
        assert result.etas == etas
        # Arrays agree with the dicts.
        ids = result.request_indices()
        arr = result.assignment_array()
        mask = result.served_mask()
        for r, u, s in zip(ids.tolist(), arr.tolist(), mask.tolist()):
            assert s == (assignment[r] is not None)
            if s:
                assert u == assignment[r]
        assert result.n_served() == sum(u is not None for u in uploads)

    @given(uploads=assignments)
    @settings(max_examples=80, deadline=None)
    def test_served_pairs_match_dict(self, uploads):
        result = ScheduleResult(assignment=dict(enumerate(uploads)))
        indices, uploaders = result.served_pairs()
        expected = [(r, u) for r, u in enumerate(uploads) if u is not None]
        assert list(zip(indices.tolist(), uploaders.tolist())) == expected

    def test_from_arrays_round_trips(self):
        uploaders = np.array([50, 60, 70], dtype=np.int64)
        assigned = np.array([1, -1, 0, 2, -1], dtype=np.int64)
        lam = np.array([0.5, 0.0, 2.5])
        etas = np.array([1.0, 0.0, 3.0, 0.0, 0.25])
        result = ScheduleResult.from_arrays(
            assigned, uploaders, lam, etas, SolverStats(rounds=3)
        )
        assert result.assignment == {0: 60, 1: None, 2: 50, 3: 70, 4: None}
        assert result.prices == {50: 0.5, 60: 0.0, 70: 2.5}
        assert result.etas == {0: 1.0, 1: 0.0, 2: 3.0, 3: 0.0, 4: 0.25}
        assert result.n_served() == 3
        assert result.uploader_loads() == {50: 1, 60: 1, 70: 1}
        assert result.stats.rounds == 3
        # Round trip: rebuild from the dict views and compare arrays.
        rebuilt = ScheduleResult(
            assignment=dict(result.assignment),
            prices=dict(result.prices),
            etas=dict(result.etas),
        )
        assert np.array_equal(
            rebuilt.assignment_array(), result.assignment_array()
        )
        assert np.array_equal(rebuilt.served_mask(), result.served_mask())

    def test_from_arrays_no_uploaders(self):
        """Requests with no declared uploaders must yield an all-None result."""
        result = ScheduleResult.from_arrays(
            np.full(3, -1, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert result.assignment == {0: None, 1: None, 2: None}
        assert result.n_served() == 0
        assert result.prices == {}

    def test_solver_handles_request_only_problem(self):
        from repro.core.problem import SchedulingProblem

        p = SchedulingProblem()
        p.add_request(peer=1, chunk="a", valuation=2.0, candidates={})
        p.add_request(peer=2, chunk="b", valuation=3.0, candidates={})
        for mode in ("jacobi", "jacobi-dense", "gauss-seidel"):
            result = AuctionSolver(epsilon=1e-6, mode=mode).solve(p)
            assert result.assignment == {0: None, 1: None}

    def test_from_assignment_ids_round_trips(self):
        assigned = np.array([7, -1, 9], dtype=np.int64)
        result = ScheduleResult.from_assignment_ids(assigned, prices={7: 1.0})
        assert result.assignment == {0: 7, 1: None, 2: 9}
        assert result.prices == {7: 1.0}
        assert result.etas == {}
        assert np.array_equal(result.assignment_array(), assigned)

    def test_solver_results_identical_dicts_across_backings(self):
        """Auction results (array-backed) equal dict-backed reconstructions."""
        p = random_problem(np.random.default_rng(4), n_requests=40)
        result = AuctionSolver(epsilon=1e-6, mode="jacobi").solve(p)
        clone = ScheduleResult(
            assignment=dict(result.assignment),
            prices=dict(result.prices),
            etas=dict(result.etas),
            stats=result.stats,
        )
        assert clone.assignment == result.assignment
        assert clone.welfare(p) == pytest.approx(result.welfare(p))
        assert clone.uploader_loads() == result.uploader_loads()
        assert clone.n_served() == result.n_served()


class TestMutationWriteBack:
    def test_assignment_mutation_reaches_arrays(self):
        result = ScheduleResult(assignment={0: 10, 1: None, 2: 20})
        result.assignment[1] = 30
        assert result.n_served() == 3
        assert result.assignment_array().tolist() == [10, 30, 20]
        result.assignment[0] = None
        assert result.n_served() == 2
        indices, uploaders = result.served_pairs()
        assert indices.tolist() == [1, 2]
        assert uploaders.tolist() == [30, 20]

    def test_price_mutation_reaches_arrays(self):
        result = ScheduleResult(assignment={0: 10}, prices={10: 1.0})
        result.prices[10] = 4.0
        ids, vals = result.price_arrays()
        assert dict(zip(ids.tolist(), vals.tolist())) == {10: 4.0}

    def test_inplace_union_reaches_arrays(self):
        result = ScheduleResult(assignment={0: 10, 1: None})
        view = result.assignment
        view |= {1: 20}
        assert result.n_served() == 2
        assert result.assignment_array().tolist() == [10, 20]

    def test_check_feasible_sees_mutations(self, small_problem):
        result = AuctionSolver(epsilon=1e-9).solve(small_problem)
        result.check_feasible(small_problem)
        result.assignment[1] = 200  # overloads uploader 200 (B = 1)
        with pytest.raises(AssertionError):
            result.check_feasible(small_problem)


class TestServedColumns:
    def test_columns_match_iterator(self, small_problem):
        result = ScheduleResult(assignment={0: 100, 1: 100, 2: 200, 3: None})
        indices, downstream, uploaders, values = result.served_columns(
            small_problem
        )
        edges = list(result.served_edges(small_problem))
        assert len(edges) == 3
        for i, (r, d, chunk, u, v) in enumerate(edges):
            assert r == indices[i]
            assert d == downstream[i]
            assert u == uploaders[i]
            assert v == pytest.approx(values[i])
            assert chunk == small_problem.chunk_of(r)
            assert v == pytest.approx(small_problem.edge_value(r, u))

    def test_non_candidate_raises_keyerror(self, small_problem):
        result = ScheduleResult(assignment={0: 100, 1: 200, 2: None, 3: None})
        with pytest.raises(KeyError):
            result.served_columns(small_problem)
