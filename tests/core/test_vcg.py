"""Tests for the VCG truthfulness extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exact import solve_hungarian
from repro.core.problem import SchedulingProblem, random_problem
from repro.core.strategic import manipulation_study, true_utility_of_peer
from repro.core.vcg import vcg_payments


def monopoly_problem():
    """Two peers compete for one unit; the loser sets the winner's price."""
    p = SchedulingProblem()
    p.set_capacity(10, 1)
    p.add_request(peer=1, chunk="a", valuation=8.0, candidates={10: 1.0})  # surplus 7
    p.add_request(peer=2, chunk="b", valuation=5.0, candidates={10: 1.0})  # surplus 4
    return p


class TestRestriction:
    def test_without_peer_removes_requests(self, small_problem):
        reduced, index_map = small_problem.without_peer(1)
        assert reduced.n_requests == 3
        assert all(reduced.request(i).peer != 1 for i in range(3))
        # Capacities intact.
        assert reduced.capacity_of(100) == 2

    def test_index_map_points_back(self, small_problem):
        reduced, index_map = small_problem.without_peer(1)
        for new, old in index_map.items():
            assert reduced.request(new).key == small_problem.request(old).key

    def test_reweighted_changes_only_valuations(self, small_problem):
        doubled = small_problem.reweighted(
            lambda r: small_problem.request(r).valuation * 2.0
        )
        assert doubled.n_requests == small_problem.n_requests
        for r in range(small_problem.n_requests):
            assert doubled.request(r).valuation == pytest.approx(
                2.0 * small_problem.request(r).valuation
            )
            assert np.array_equal(
                doubled.candidates_of(r), small_problem.candidates_of(r)
            )


class TestVCGPayments:
    def test_monopoly_price_is_displaced_surplus(self):
        """Winner pays exactly the displaced bidder's surplus (4.0)."""
        p = monopoly_problem()
        outcome = vcg_payments(p)
        assert outcome.result.assignment[0] == 10
        assert outcome.payment_of(1) == pytest.approx(4.0)
        assert outcome.net_utility_of(1) == pytest.approx(7.0 - 4.0)

    def test_loser_pays_nothing(self):
        outcome = vcg_payments(monopoly_problem())
        assert outcome.payment_of(2) == 0.0
        assert outcome.net_utility_of(2) == 0.0

    def test_no_competition_no_payment(self):
        p = SchedulingProblem()
        p.set_capacity(10, 2)
        p.add_request(peer=1, chunk="a", valuation=8.0, candidates={10: 1.0})
        p.add_request(peer=2, chunk="b", valuation=5.0, candidates={10: 1.0})
        outcome = vcg_payments(p)
        assert outcome.total_payments() == pytest.approx(0.0)

    def test_payments_nonnegative_and_ir(self, rng):
        """Non-negative payments; individual rationality (net utility ≥ 0)."""
        for _ in range(6):
            p = random_problem(rng, n_requests=25, n_uploaders=4, capacity_range=(1, 2))
            outcome = vcg_payments(p)
            for peer, payment in outcome.payments.items():
                assert payment >= -1e-9
                assert outcome.net_utility_of(peer) >= -1e-9

    def test_payment_bounded_by_gross_utility(self, rng):
        p = random_problem(rng, n_requests=30, n_uploaders=3, capacity_range=(1, 2))
        outcome = vcg_payments(p)
        for peer in outcome.payments:
            assert outcome.payment_of(peer) <= outcome.gross_utilities[peer] + 1e-9


class TestTruthfulness:
    @pytest.mark.parametrize("factor", [0.3, 0.7, 1.5, 3.0])
    def test_misreporting_never_beats_truth_under_vcg(self, factor, rng):
        """VCG's dominant-strategy property, numerically."""
        p = random_problem(rng, n_requests=20, n_uploaders=3, capacity_range=(1, 2))
        peer = p.request(0).peer
        truthful, lied = manipulation_study(p, peer, [1.0, factor])
        assert lied.vcg_net_utility <= truthful.vcg_net_utility + 1e-9

    def test_paper_auction_is_manipulable(self):
        """Without payments, inflating reports strictly helps the cheater
        and strictly hurts society — the gap the paper's future work targets."""
        p = monopoly_problem()
        # Peer 2 (the rightful loser) inflates 5.0 → 25.0 and steals the unit.
        truthful, lied = manipulation_study(p, peer=2, factors=[1.0, 5.0])
        assert lied.auction_true_utility > truthful.auction_true_utility
        assert lied.auction_welfare < truthful.auction_welfare
        # Under VCG the theft is unprofitable.
        assert lied.vcg_net_utility <= truthful.vcg_net_utility + 1e-9

    def test_true_utility_of_peer_accounting(self, small_problem):
        result = solve_hungarian(small_problem)
        total = sum(
            true_utility_of_peer(small_problem, result, peer)
            for peer in {small_problem.request(r).peer for r in range(4)}
        )
        assert total == pytest.approx(result.welfare(small_problem))
