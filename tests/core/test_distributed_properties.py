"""Property-based tests for the distributed auction protocol."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributed import DistributedAuction
from repro.core.exact import solve_hungarian
from repro.core.problem import SchedulingProblem
from repro.sim.engine import Simulator
from repro.sim.network import ConstantLatency, SimNetwork

EPS = 1e-6


@st.composite
def small_problems(draw):
    n_uploaders = draw(st.integers(1, 4))
    uploader_ids = [100 + i for i in range(n_uploaders)]
    p = SchedulingProblem()
    for uid in uploader_ids:
        p.set_capacity(uid, draw(st.integers(0, 2)))
    n_requests = draw(st.integers(1, 12))
    for r in range(n_requests):
        k = draw(st.integers(0, n_uploaders))
        candidates = {
            uid: round(draw(st.floats(0.0, 10.0, allow_nan=False)), 2)
            for uid in uploader_ids[:k]
        }
        valuation = round(draw(st.floats(0.0, 12.0, allow_nan=False)), 2)
        p.add_request(peer=r, chunk=f"c{r}", valuation=valuation, candidates=candidates)
    return p


def run_distributed(problem, latency=0.01, jitter=0.0, seed=0):
    sim = Simulator()
    network = SimNetwork(
        sim,
        latency=ConstantLatency(latency),
        jitter=jitter,
        rng=np.random.default_rng(seed),
    )
    auction = DistributedAuction(sim, network, problem, epsilon=EPS)
    return auction, auction.run_to_convergence()


@settings(max_examples=30, deadline=None)
@given(problem=small_problems())
def test_distributed_matches_hungarian(problem):
    _, result = run_distributed(problem)
    result.check_feasible(problem)
    optimum = solve_hungarian(problem).welfare(problem)
    assert result.welfare(problem) >= optimum - problem.n_requests * EPS - 1e-9
    assert result.welfare(problem) <= optimum + 1e-9


@settings(max_examples=20, deadline=None)
@given(problem=small_problems(), jitter_seed=st.integers(0, 50))
def test_message_reordering_does_not_break_optimality(problem, jitter_seed):
    """Heavy jitter reorders deliveries; the outcome stays optimal."""
    _, result = run_distributed(problem, latency=0.1, jitter=0.9, seed=jitter_seed)
    result.check_feasible(problem)
    optimum = solve_hungarian(problem).welfare(problem)
    assert result.welfare(problem) >= optimum - problem.n_requests * EPS - 1e-9


@settings(max_examples=20, deadline=None)
@given(problem=small_problems())
def test_prices_monotone_per_uploader(problem):
    auction, _ = run_distributed(problem)
    series: dict = {}
    for event in auction.price_events:
        series.setdefault(event.uploader, []).append(event.price)
    for prices in series.values():
        assert prices == sorted(prices)
        assert all(p > 0 for p in prices)
