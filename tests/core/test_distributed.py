"""Tests for the message-level distributed auction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributed import DistributedAuction
from repro.core.exact import solve_hungarian
from repro.core.problem import SchedulingProblem, random_problem
from repro.sim.engine import Simulator
from repro.sim.network import ConstantLatency, SimNetwork


def run_distributed(problem, epsilon=1e-6, latency=0.01, loss=0.0, seed=0):
    sim = Simulator()
    network = SimNetwork(
        sim,
        latency=ConstantLatency(latency),
        loss_probability=loss,
        rng=np.random.default_rng(seed),
    )
    auction = DistributedAuction(sim, network, problem, epsilon=epsilon)
    result = auction.run_to_convergence()
    return auction, result


class TestEquivalence:
    def test_known_optimum(self, small_problem, small_problem_optimum):
        _, result = run_distributed(small_problem)
        result.check_feasible(small_problem)
        assert result.welfare(small_problem) == pytest.approx(small_problem_optimum)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_hungarian_on_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        p = random_problem(rng, n_requests=40, n_uploaders=6, capacity_range=(1, 3))
        _, result = run_distributed(p, epsilon=1e-6)
        result.check_feasible(p)
        optimum = solve_hungarian(p).welfare(p)
        assert result.welfare(p) >= optimum - p.n_requests * 1e-6 - 1e-9

    def test_interleaving_with_random_latency_still_optimal(self):
        """Stale prices from message delays must not break optimality."""
        rng = np.random.default_rng(3)
        p = random_problem(rng, n_requests=30, n_uploaders=4, capacity_range=(1, 2))
        sim = Simulator()
        network = SimNetwork(
            sim,
            latency=ConstantLatency(0.05),
            jitter=0.9,
            rng=np.random.default_rng(1),
        )
        auction = DistributedAuction(sim, network, p, epsilon=1e-6)
        result = auction.run_to_convergence()
        optimum = solve_hungarian(p).welfare(p)
        assert result.welfare(p) >= optimum - p.n_requests * 1e-6 - 1e-9


class TestProtocol:
    def test_price_events_monotone_per_uploader(self, small_problem):
        auction, _ = run_distributed(small_problem)
        by_uploader = {}
        for event in auction.price_events:
            by_uploader.setdefault(event.uploader, []).append(event.price)
        for prices in by_uploader.values():
            assert prices == sorted(prices)

    def test_convergence_time_positive_under_contention(self):
        p = SchedulingProblem()
        p.set_capacity(10, 1)
        p.add_request(1, "a", 8.0, {10: 1.0})
        p.add_request(2, "b", 5.0, {10: 1.0})
        auction, _ = run_distributed(p)
        assert auction.convergence_time() > 0.0
        times, prices = auction.price_series(10)
        assert len(times) == len(prices) >= 1

    def test_cannot_start_twice(self, small_problem):
        sim = Simulator()
        network = SimNetwork(sim, latency=ConstantLatency(0.01))
        auction = DistributedAuction(sim, network, small_problem)
        auction.start()
        with pytest.raises(RuntimeError):
            auction.start()

    def test_time_limit_enforced(self):
        p = SchedulingProblem()
        p.set_capacity(10, 1)
        p.add_request(1, "a", 8.0, {10: 1.0})
        p.add_request(2, "b", 5.0, {10: 1.0})
        sim = Simulator()
        network = SimNetwork(sim, latency=ConstantLatency(10.0))  # glacial
        auction = DistributedAuction(sim, network, p, epsilon=1e-6)
        with pytest.raises(RuntimeError):
            auction.run_to_convergence(time_limit=1.0)

    def test_message_stats_populated(self, small_problem):
        sim = Simulator()
        network = SimNetwork(sim, latency=ConstantLatency(0.01))
        auction = DistributedAuction(sim, network, small_problem, epsilon=1e-6)
        auction.run_to_convergence()
        assert network.sent["bid"] >= 3
        assert network.delivered["accept"] >= 3


class TestFailures:
    def test_terminates_under_message_loss(self):
        """Lost messages may strand requests but the auction must quiesce
        and stay feasible."""
        rng = np.random.default_rng(5)
        p = random_problem(rng, n_requests=30, n_uploaders=5, capacity_range=(1, 3))
        _, result = run_distributed(p, loss=0.2, seed=2)
        result.check_feasible(p)

    def test_peer_departure_mid_auction(self):
        """Section IV-C: a departed uploader's winners re-bid elsewhere."""
        p = SchedulingProblem()
        p.set_capacity(10, 2)
        p.set_capacity(20, 2)
        p.add_request(1, "a", 8.0, {10: 0.5, 20: 1.0})
        p.add_request(2, "b", 7.0, {10: 0.5, 20: 1.0})
        sim = Simulator()
        network = SimNetwork(sim, latency=ConstantLatency(0.01))
        auction = DistributedAuction(sim, network, p, epsilon=1e-6)
        auction.start()
        sim.run(until=0.05)  # let initial bids land at uploader 10
        auction.depart_peer(10)
        result = auction.run_to_convergence()
        # Both requests must end up at the surviving uploader.
        assert result.assignment[0] == 20
        assert result.assignment[1] == 20

    def test_departing_bidder_retires_its_requests(self, small_problem):
        sim = Simulator()
        network = SimNetwork(sim, latency=ConstantLatency(0.01))
        auction = DistributedAuction(sim, network, small_problem, epsilon=1e-6)
        auction.start()
        sim.run(until=0.005)  # before any bid arrives (latency 0.01)
        auction.depart_peer(1)  # peer 1 owns request 0
        result = auction.run_to_convergence()
        assert result.assignment[0] is None


class TestEvictAcceptReordering:
    """Regression: an Evict that overtakes its Accept must not freeze a bidder.

    Under heavy jitter an auctioneer's Accept can arrive *after* the
    Evict that displaced the same allocation.  The bidder used to ignore
    the early Evict (no assigned request yet) and then trust the late
    Accept, stranding the request in a phantom assigned state while the
    auctioneer had already given its unit away — a permanent welfare
    loss the duality tests bound.
    """

    def make_problem(self):
        p = SchedulingProblem()
        for u, c in {100: 0, 101: 1, 102: 1}.items():
            p.set_capacity(u, c)
        requests = [
            (10.98, {}),
            (10.43, {100: 1.27, 101: 0.74, 102: 0.7}),
            (8.08, {100: 4.97, 101: 1.64}),
            (5.52, {100: 3.18, 101: 7.11}),
            (6.95, {100: 7.9, 101: 0.93}),
            (5.87, {100: 1.97, 101: 8.08}),
            (9.61, {100: 1.83, 101: 9.63}),
            (7.86, {100: 4.81, 101: 8.14, 102: 6.03}),
            (10.02, {100: 0.65}),
            (9.37, {100: 3.82, 101: 3.26, 102: 9.94}),
            (5.07, {}),
        ]
        for r, (v, cands) in enumerate(requests):
            p.add_request(peer=r, chunk=f"c{r}", valuation=v, candidates=cands)
        return p

    def test_jittered_run_stays_optimal(self):
        from repro.core.exact import solve_hungarian

        p = self.make_problem()
        epsilon = 1e-6
        optimum = solve_hungarian(p).welfare(p)
        # Jitter seed 1 used to deliver uploader 102's Evict before its
        # Accept and converge to welfare 8.27 against an optimum of 16.17.
        for jitter_seed in range(6):
            sim = Simulator()
            network = SimNetwork(
                sim,
                latency=ConstantLatency(0.1),
                jitter=0.9,
                rng=np.random.default_rng(jitter_seed),
            )
            auction = DistributedAuction(sim, network, p, epsilon=epsilon)
            result = auction.run_to_convergence()
            result.check_feasible(p)
            assert result.welfare(p) >= optimum - p.n_requests * epsilon - 1e-9
            # Bidder belief must match auctioneer state at quiescence.
            for bidder in auction.bidders.values():
                for state in bidder.requests:
                    if state.assigned_to is not None:
                        key = (bidder.peer, state.chunk)
                        aset = auction.auctioneers[state.assigned_to].aset
                        assert key in aset.bids
