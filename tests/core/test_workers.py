"""Unit tests for the multiprocess shard-worker pool (core/workers.py).

Everything here pins the pool's contract: parallel solves are
byte-identical to the in-process sequential sharded path, every failure
mode (crash, timeout, oversized payload, missing shared memory)
degrades to that path with a reason-coded counter, and shared-memory
blocks never outlive the pool.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ScheduleResult,
    ShardedAuctionSolver,
    ShardWorkerPool,
    WorkerError,
    random_problem,
    workers_available,
)
from repro.core import workers as workers_mod

needs_shm = pytest.mark.skipif(
    not workers_available(), reason="shared memory unavailable on this platform"
)


def _assert_byte_identical(a: ScheduleResult, b: ScheduleResult) -> None:
    assert np.array_equal(a.assignment_array(), b.assignment_array())
    assert np.array_equal(a.price_arrays()[0], b.price_arrays()[0])
    assert np.array_equal(a.price_arrays()[1], b.price_arrays()[1])
    assert np.array_equal(a.eta_arrays()[1], b.eta_arrays()[1])
    assert a.stats == b.stats


def _problem_and_regions(seed: int):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(20, 120))
    problem = random_problem(
        rng,
        n_requests=n,
        n_uploaders=int(rng.integers(3, 12)),
        max_candidates=5,
    )
    return problem, rng.integers(0, 4, size=n)


def _publish_arrays(n_rows: int = 8, n_uploaders: int = 3, scale: float = 1.0):
    """A minimal consistent block set for pool-level publish tests."""
    edges = n_rows * 2
    return {
        "values": np.full(edges, scale, dtype=np.float64),
        "uidx": np.arange(edges, dtype=np.int64) % n_uploaders,
        "indptr": np.arange(0, edges + 1, 2, dtype=np.int64),
        "uploaders": np.arange(n_uploaders, dtype=np.int64) + 10_000,
        "capacity": np.full(n_uploaders, 4, dtype=np.int64),
        "lam0": np.zeros(n_uploaders, dtype=np.float64),
        "porder": np.arange(n_rows, dtype=np.int64),
        "pindptr": np.array([0, n_rows // 2, n_rows], dtype=np.int64),
    }


@needs_shm
class TestPoolParity:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_parallel_byte_identical_to_sequential(self, seed):
        problem, regions = _problem_and_regions(seed)
        seq = ShardedAuctionSolver(epsilon=0.01, n_shards=3)
        par = ShardedAuctionSolver(epsilon=0.01, n_shards=3, n_workers=2)
        try:
            _assert_byte_identical(
                seq.solve(problem, regions), par.solve(problem, regions)
            )
            report = par.last_report
            assert report.procs == 2
            assert report.par_shards >= 2
            assert report.worker_fallback == ""
            assert par.worker_fallbacks == {}
        finally:
            par.close()

    def test_warm_start_parity(self):
        problem, regions = _problem_and_regions(7)
        ids = problem.csr().uploaders
        warm = (ids, np.linspace(0.0, 2.0, len(ids)))
        seq = ShardedAuctionSolver(epsilon=0.01, n_shards=3)
        par = ShardedAuctionSolver(epsilon=0.01, n_shards=3, n_workers=2)
        try:
            _assert_byte_identical(
                seq.solve(problem, regions, initial_prices=warm),
                par.solve(problem, regions, initial_prices=warm),
            )
        finally:
            par.close()

    def test_repeat_solve_republishes_only_invalidated_blocks(self):
        problem, regions = _problem_and_regions(5)
        par = ShardedAuctionSolver(epsilon=0.01, n_shards=3, n_workers=2)
        try:
            par.solve(problem, regions)
            first = par.last_report.blocks_republished
            assert first == 8  # cold pool: every block written
            par.solve(problem, regions)
            # Identical problem: only values/lam0 rewrite (valuations
            # are recomputed wholesale each slot by design).
            assert par.last_report.blocks_republished == 2
        finally:
            par.close()


@needs_shm
class TestPoolFaultTolerance:
    def test_worker_crash_falls_back_and_heals(self):
        problem, regions = _problem_and_regions(2)
        seq = ShardedAuctionSolver(epsilon=0.01, n_shards=3)
        par = ShardedAuctionSolver(epsilon=0.01, n_shards=3, n_workers=2)
        try:
            reference = seq.solve(problem, regions)
            _assert_byte_identical(reference, par.solve(problem, regions))
            par._pool.inject_crash(0)
            crashed = par.solve(problem, regions)
            _assert_byte_identical(reference, crashed)
            assert par.last_report.worker_fallback == "worker-crash"
            assert par.last_report.procs == 0
            assert par.worker_fallbacks == {"worker-crash": 1}
            # The pool restarts itself on the next publish.
            healed = par.solve(problem, regions)
            _assert_byte_identical(reference, healed)
            assert par.last_report.worker_fallback == ""
            assert par.last_report.procs == 2
            assert par.worker_fallbacks == {"worker-crash": 1}
        finally:
            par.close()

    def test_worker_timeout_falls_back_identical(self):
        problem, regions = _problem_and_regions(4)
        seq = ShardedAuctionSolver(epsilon=0.01, n_shards=3)
        par = ShardedAuctionSolver(
            epsilon=0.01, n_shards=3, n_workers=2, worker_timeout=0.25
        )
        try:
            reference = seq.solve(problem, regions)
            _assert_byte_identical(reference, par.solve(problem, regions))
            par._pool.inject_delay(0, seconds=1.5)
            stalled = par.solve(problem, regions)
            _assert_byte_identical(reference, stalled)
            assert par.worker_fallbacks == {"worker-timeout": 1}
        finally:
            par.close()

    def test_oversized_payload_rejected_without_breaking_pool(self):
        pool = ShardWorkerPool(1)
        try:
            pool.publish(_publish_arrays(), stable=())
            big = np.zeros(workers_mod._MAX_PIPE_BYTES // 8 + 1, dtype=np.int64)
            empty_i = np.zeros(0, dtype=np.int64)
            empty_f = np.zeros(0, dtype=np.float64)
            with pytest.raises(WorkerError) as exc:
                pool.solve_rows(
                    big, empty_i, empty_f, empty_i, empty_i,
                    epsilon=0.01, max_rounds=100,
                )
            assert exc.value.reason == "payload-too-large"
            # The message never went out — the pool stays usable.
            assert pool.map_shards([0, 1], epsilon=0.01, max_rounds=1000)
        finally:
            pool.close()

    def test_oversized_payload_solver_fallback(self, monkeypatch):
        # Force every phase-2 dispatch over the limit: the contested
        # re-solves run in-process, phase 1 still runs on the pool, and
        # the result is unchanged.
        monkeypatch.setattr(workers_mod, "_MAX_PIPE_BYTES", 0)
        rng = np.random.default_rng(27)
        problem = random_problem(
            rng,
            n_requests=int(rng.integers(10, 50)),
            n_uploaders=int(rng.integers(2, 8)),
            max_candidates=4,
        )
        regions = rng.integers(0, 4, size=problem.n_requests)
        seq = ShardedAuctionSolver(epsilon=0.01, n_shards=3)
        par = ShardedAuctionSolver(epsilon=0.01, n_shards=3, n_workers=2)
        try:
            _assert_byte_identical(
                seq.solve(problem, regions), par.solve(problem, regions)
            )
            assert par.worker_fallbacks.get("payload-too-large", 0) >= 1
            assert par.last_report.procs == 2  # phase 1 stayed parallel
        finally:
            par.close()

    def test_worker_error_reported(self):
        pool = ShardWorkerPool(1)
        try:
            pool.publish(_publish_arrays(), stable=())
            with pytest.raises(WorkerError) as exc:
                # Shard 7 does not exist in the published plan.
                pool.map_shards([7], epsilon=0.01, max_rounds=100)
            assert exc.value.reason == "worker-error"
        finally:
            pool.close()


@needs_shm
class TestSharedMemoryLifecycle:
    def test_growth_unlinks_old_block(self):
        from multiprocessing import shared_memory

        pool = ShardWorkerPool(1)
        try:
            pool.publish(_publish_arrays(n_rows=8), stable=())
            old_name = pool._blocks["values"].shm.name
            pool.publish(_publish_arrays(n_rows=4096), stable=())
            new_name = pool._blocks["values"].shm.name
            assert new_name != old_name
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=old_name)
        finally:
            pool.close()

    def test_stable_blocks_skip_rewrite(self):
        pool = ShardWorkerPool(1)
        stable = ("uidx", "indptr", "uploaders", "capacity", "porder", "pindptr")
        try:
            assert pool.publish(_publish_arrays(), stable=stable) == 8
            assert pool.publish(_publish_arrays(), stable=stable) == 2
            # A capacity change invalidates exactly its block.
            arrays = _publish_arrays()
            arrays["capacity"] = arrays["capacity"] + 1
            assert pool.publish(arrays, stable=stable) == 3
        finally:
            pool.close()

    def test_close_unlinks_everything_and_is_idempotent(self):
        from multiprocessing import shared_memory

        pool = ShardWorkerPool(2)
        pool.publish(_publish_arrays(), stable=())
        names = [block.shm.name for block in pool._blocks.values()]
        procs = list(pool._procs)
        assert pool._atexit_registered
        pool.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        assert all(not proc.is_alive() for proc in procs)
        assert not pool._atexit_registered
        pool.close()  # idempotent
        with pytest.raises(WorkerError) as exc:
            pool.publish(_publish_arrays(), stable=())
        assert exc.value.reason == "pool-closed"

    def test_no_blocks_leak_across_solves(self):
        problem, regions = _problem_and_regions(9)
        par = ShardedAuctionSolver(epsilon=0.01, n_shards=3, n_workers=1)
        try:
            for _ in range(3):
                par.solve(problem, regions)
            # One block per published key, regardless of solve count.
            assert len(par._pool._blocks) == 8
        finally:
            par.close()
        assert par._pool is None


class TestGuards:
    def test_workers_available_is_bool(self):
        assert isinstance(workers_available(), bool)

    def test_pool_requires_positive_workers(self):
        with pytest.raises(ValueError, match="n_workers"):
            ShardWorkerPool(0)

    def test_solver_rejects_negative_workers(self):
        with pytest.raises(ValueError, match="n_workers"):
            ShardedAuctionSolver(n_workers=-1)

    def test_zero_workers_never_builds_a_pool(self):
        problem, regions = _problem_and_regions(1)
        solver = ShardedAuctionSolver(epsilon=0.01, n_shards=3)
        solver.solve(problem, regions)
        assert solver._pool is None
        assert solver.last_report.procs == 0
        assert solver.last_report.blocks_republished == -1
