"""Property-based tests: every scheduler is feasible; the auction dominates.

Shared invariants across the whole scheduler registry on arbitrary
instances, plus dominance of the (optimal) auction over each baseline.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.auction import AuctionSolver
from repro.core.scheduler import available_schedulers, make_scheduler
from repro.core.problem import SchedulingProblem

EPS = 1e-6


@st.composite
def problems(draw):
    n_uploaders = draw(st.integers(1, 5))
    uploader_ids = [100 + i for i in range(n_uploaders)]
    p = SchedulingProblem()
    for uid in uploader_ids:
        p.set_capacity(uid, draw(st.integers(0, 3)))
    n_requests = draw(st.integers(1, 15))
    for r in range(n_requests):
        k = draw(st.integers(0, n_uploaders))
        chosen = uploader_ids[:k]
        candidates = {
            uid: round(draw(st.floats(0.0, 10.0, allow_nan=False)), 2)
            for uid in chosen
        }
        valuation = round(draw(st.floats(0.0, 12.0, allow_nan=False)), 2)
        p.add_request(peer=r, chunk=f"c{r}", valuation=valuation, candidates=candidates)
    return p


@settings(max_examples=25, deadline=None)
@given(problem=problems())
def test_every_scheduler_feasible(problem):
    rng = np.random.default_rng(0)
    for name in available_schedulers():
        result = make_scheduler(name, rng=rng).schedule(problem)
        result.check_feasible(problem)


@settings(max_examples=25, deadline=None)
@given(problem=problems())
def test_auction_dominates_every_baseline(problem):
    auction = AuctionSolver(epsilon=EPS).solve(problem).welfare(problem)
    rng = np.random.default_rng(1)
    for name in ("locality", "locality-retry", "agnostic", "greedy", "random"):
        baseline = make_scheduler(name, rng=rng).schedule(problem).welfare(problem)
        assert auction >= baseline - problem.n_requests * EPS - 1e-9, name


@settings(max_examples=25, deadline=None)
@given(problem=problems())
def test_welfare_oblivious_baselines_serve_everything_feasible(problem):
    """Locality serves any request whose first choice has room — it never
    leaves capacity idle at its chosen target while urgent demand waits."""
    result = make_scheduler("locality").schedule(problem)
    loads = result.uploader_loads()
    for r, uploader in result.assignment.items():
        if uploader is not None:
            continue
        candidates = problem.candidates_of(r)
        if len(candidates) == 0:
            continue
        costs = problem.costs_of(r)
        first_choice = int(candidates[int(np.argmin(costs))])
        # Unserved ⇒ its single shot at the cheapest neighbor was beaten:
        # that neighbor must be full (by more urgent requests).
        assert loads.get(first_choice, 0) == problem.capacity_of(first_choice)
