"""Batch/columnar construction equivalence and the CSR view.

The columnar pipeline rests on two pins:

* ``add_requests_batch`` / ``ProblemBuilder`` build the *identical*
  problem as a sequence of ``add_request`` calls (property-tested over
  random instances);
* ``csr()`` and ``dense()`` are two encodings of the same edges —
  ``csr().to_dense()`` round-trips exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import ProblemBuilder, SchedulingProblem, random_problem


# ----------------------------------------------------------------------
# Random instance description: plain data both construction paths consume.
# ----------------------------------------------------------------------
@st.composite
def instance_descriptions(draw):
    n_uploaders = draw(st.integers(1, 6))
    uploader_ids = [100 + i for i in range(n_uploaders)]
    capacities = {
        uid: draw(st.integers(0, 3)) for uid in uploader_ids
    }
    n_requests = draw(st.integers(0, 15))
    requests = []
    for r in range(n_requests):
        subset = draw(
            st.lists(st.sampled_from(uploader_ids), unique=True, max_size=n_uploaders)
        )
        candidates = {
            uid: draw(st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False))
            for uid in subset
        }
        valuation = draw(st.floats(-2.0, 12.0, allow_nan=False, allow_infinity=False))
        requests.append((r, f"chunk-{r}", valuation, candidates))
    return capacities, requests


def build_per_request(capacities, requests) -> SchedulingProblem:
    p = SchedulingProblem()
    for uploader, capacity in capacities.items():
        p.set_capacity(uploader, capacity)
    for peer, chunk, valuation, candidates in requests:
        p.add_request(peer=peer, chunk=chunk, valuation=valuation, candidates=candidates)
    return p


def build_batched(capacities, requests) -> SchedulingProblem:
    p = SchedulingProblem()
    p.set_capacities_batch(list(capacities.keys()), list(capacities.values()))
    peers = [peer for peer, _, _, _ in requests]
    chunks = [chunk for _, chunk, _, _ in requests]
    valuations = [v for _, _, v, _ in requests]
    cand_uploaders: list = []
    cand_costs: list = []
    indptr = [0]
    for _, _, _, candidates in requests:
        cand_uploaders.extend(candidates.keys())
        cand_costs.extend(candidates.values())
        indptr.append(len(cand_uploaders))
    p.add_requests_batch(peers, chunks, valuations, cand_uploaders, cand_costs, indptr)
    return p


def build_with_builder(capacities, requests) -> SchedulingProblem:
    b = ProblemBuilder()
    b.set_capacities(list(capacities.keys()), list(capacities.values()))
    # One block per request: the builder must concatenate correctly.
    for peer, chunk, valuation, candidates in requests:
        b.add_block(
            peers=peer,
            chunks=[chunk],
            valuations=[valuation],
            cand_uploaders=list(candidates.keys()),
            cand_costs=list(candidates.values()),
            counts=[len(candidates)],
        )
    return b.build()


def assert_problems_identical(a: SchedulingProblem, b: SchedulingProblem) -> None:
    assert a.n_requests == b.n_requests
    assert a.n_edges() == b.n_edges()
    assert a.uploaders() == b.uploaders()
    for u in a.uploaders():
        assert a.capacity_of(u) == b.capacity_of(u)
    for r in range(a.n_requests):
        assert a.request(r) == b.request(r)
        assert np.array_equal(a.candidates_of(r), b.candidates_of(r))
        assert np.array_equal(a.costs_of(r), b.costs_of(r))
    da, db = a.dense(), b.dense()
    assert np.array_equal(da.values, db.values)
    assert np.array_equal(da.uploader_index, db.uploader_index)
    assert np.array_equal(da.uploaders, db.uploaders)
    assert np.array_equal(da.capacity, db.capacity)


@settings(max_examples=60, deadline=None)
@given(description=instance_descriptions())
def test_batch_equals_per_request(description):
    capacities, requests = description
    assert_problems_identical(
        build_per_request(capacities, requests), build_batched(capacities, requests)
    )


@settings(max_examples=60, deadline=None)
@given(description=instance_descriptions())
def test_builder_equals_per_request(description):
    capacities, requests = description
    assert_problems_identical(
        build_per_request(capacities, requests),
        build_with_builder(capacities, requests),
    )


@settings(max_examples=60, deadline=None)
@given(description=instance_descriptions())
def test_csr_round_trips_against_dense(description):
    capacities, requests = description
    p = build_per_request(capacities, requests)
    csr = p.csr()
    dense = p.dense()
    redense = csr.to_dense()
    assert np.array_equal(redense.values, dense.values)
    assert np.array_equal(redense.uploader_index, dense.uploader_index)
    assert np.array_equal(redense.uploaders, dense.uploaders)
    assert np.array_equal(redense.capacity, dense.capacity)
    # CSR row slices reproduce the per-request accessors.
    uploaders = csr.uploaders
    for r in range(p.n_requests):
        row = csr.row(r)
        assert np.array_equal(uploaders[csr.uploader_index[row]], p.candidates_of(r))
        np.testing.assert_array_equal(csr.values[row], p.edge_values_of(r))
    assert csr.n_edges == p.n_edges()
    assert csr.n_requests == p.n_requests


class TestCSRView:
    def test_shapes_and_order(self, small_problem):
        csr = small_problem.csr()
        assert csr.n_requests == 4
        assert csr.n_edges == 6
        assert list(csr.indptr) == [0, 2, 3, 5, 6]
        assert np.array_equal(csr.counts(), [2, 1, 2, 1])
        assert np.array_equal(csr.edge_rows(), [0, 0, 1, 2, 2, 3])

    def test_cached_and_invalidated(self, small_problem):
        first = small_problem.csr()
        assert small_problem.csr() is first
        small_problem.set_capacity(300, 1)
        assert small_problem.csr() is not first

    def test_welfare_matches_loop(self, small_problem):
        assignment = {0: 100, 1: 100, 2: 200, 3: None}
        assert small_problem.welfare(assignment) == pytest.approx(16.0)
        assert small_problem._welfare_loop(assignment) == pytest.approx(16.0)

    def test_welfare_non_candidate_raises(self, small_problem):
        with pytest.raises(KeyError):
            small_problem.welfare({1: 200})


class TestBatchValidation:
    def make_base(self):
        p = SchedulingProblem()
        p.set_capacity(10, 1)
        p.set_capacity(11, 2)
        return p

    def test_duplicate_key_within_batch(self):
        p = self.make_base()
        with pytest.raises(ValueError, match="duplicate request"):
            p.add_requests_batch(
                [1, 1], ["a", "a"], [5.0, 6.0], [10, 10], [1.0, 1.0], [0, 1, 2]
            )
        assert p.n_requests == 0  # failed batch must not half-commit

    def test_duplicate_key_against_existing(self):
        p = self.make_base()
        p.add_request(1, "a", 5.0, {10: 1.0})
        with pytest.raises(ValueError, match="duplicate request"):
            p.add_requests_batch([1], ["a"], [6.0], [11], [1.0], [0, 1])
        assert p.n_requests == 1

    def test_self_upload_rejected(self):
        p = self.make_base()
        p.set_capacity(1, 1)
        with pytest.raises(ValueError, match="cannot upload to itself"):
            p.add_requests_batch([1], ["a"], [5.0], [1], [0.5], [0, 1])

    def test_unknown_uploader_rejected(self):
        p = self.make_base()
        with pytest.raises(ValueError, match="no declared capacity"):
            p.add_requests_batch([1], ["a"], [5.0], [99], [1.0], [0, 1])

    def test_bad_cost_rejected(self):
        p = self.make_base()
        with pytest.raises(ValueError, match="cost must be finite"):
            p.add_requests_batch([1], ["a"], [5.0], [10], [-1.0], [0, 1])
        with pytest.raises(ValueError, match="cost must be finite"):
            p.add_requests_batch([1], ["a"], [5.0], [10], [np.inf], [0, 1])

    def test_nonfinite_valuation_rejected(self):
        p = self.make_base()
        with pytest.raises(ValueError, match="valuation must be finite"):
            p.add_requests_batch([1], ["a"], [np.nan], [10], [1.0], [0, 1])

    def test_duplicate_candidate_in_one_request(self):
        p = self.make_base()
        with pytest.raises(ValueError, match="duplicate candidate"):
            p.add_requests_batch(
                [1], ["a"], [5.0], [10, 10], [1.0, 2.0], [0, 2]
            )

    def test_bad_indptr_rejected(self):
        p = self.make_base()
        with pytest.raises(ValueError, match="indptr"):
            p.add_requests_batch([1], ["a"], [5.0], [10], [1.0], [0, 2])
        with pytest.raises(ValueError, match="indptr"):
            p.add_requests_batch([1, 2], ["a", "b"], [5.0, 5.0], [10], [1.0], [0, 1])

    def test_empty_batch_is_noop(self):
        p = self.make_base()
        indices = p.add_requests_batch([], [], [], [], [], [0])
        assert indices == range(0, 0)
        assert p.n_requests == 0

    def test_returns_contiguous_indices(self):
        p = self.make_base()
        p.add_request(5, "z", 1.0, {10: 0.5})
        indices = p.add_requests_batch(
            [1, 2], ["a", "b"], [5.0, 4.0], [10, 11], [1.0, 2.0], [0, 1, 2]
        )
        assert indices == range(1, 3)
        assert p.request(1).key == (1, "a")
        assert p.request(2).key == (2, "b")

    def test_mixed_batch_then_per_request(self):
        p = self.make_base()
        p.add_requests_batch([1], ["a"], [5.0], [10], [1.0], [0, 1])
        index = p.add_request(2, "b", 4.0, {11: 0.5})
        assert index == 1
        assert p.n_edges() == 2
        csr = p.csr()
        assert csr.n_edges == 2


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_random_problem_csr_consistency(seed):
    p = random_problem(np.random.default_rng(seed), n_requests=25, n_uploaders=6)
    csr = p.csr()
    total = 0.0
    for r in range(p.n_requests):
        total += float(p.edge_values_of(r).sum())
    assert float(csr.values.sum()) == pytest.approx(total)
