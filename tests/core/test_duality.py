"""Tests for dual objective, complementary slackness and Theorem 1 checks."""

from __future__ import annotations

import pytest

from repro.core.auction import AuctionSolver
from repro.core.duality import (
    check_complementary_slackness,
    dual_objective,
    duality_gap,
    verify_theorem1,
)
from repro.core.result import ScheduleResult


class TestDualObjective:
    def test_formula(self, small_problem):
        prices = {100: 2.0, 200: 0.5}
        etas = {0: 1.0, 1: 0.0, 2: 3.0, 3: 0.0}
        # Σ λ_u B(u) = 2·2 + 0.5·1 = 4.5; Σ η = 4.0
        assert dual_objective(small_problem, prices, etas) == pytest.approx(8.5)

    def test_zero_duals(self, small_problem):
        assert dual_objective(small_problem, {}, {}) == 0.0


class TestCertificates:
    def test_auction_result_passes(self, small_problem):
        result = AuctionSolver(epsilon=1e-9).solve(small_problem)
        report = check_complementary_slackness(small_problem, result, tol=1e-6)
        assert report.optimal
        assert report.violations == []
        assert -1e-9 <= report.gap <= 1e-6

    def test_verify_theorem1_passes(self, small_problem):
        result = AuctionSolver(epsilon=1e-9).solve(small_problem)
        assert verify_theorem1(small_problem, result, epsilon=1e-9).optimal

    def test_detects_dual_infeasibility(self, small_problem):
        result = AuctionSolver(epsilon=1e-9).solve(small_problem)
        broken = ScheduleResult(
            assignment=dict(result.assignment),
            prices={u: 0.0 for u in result.prices},  # λ=0 but η too small
            etas={r: 0.0 for r in result.etas},
            stats=result.stats,
        )
        report = check_complementary_slackness(small_problem, broken, tol=1e-6)
        assert not report.dual_feasible
        assert any("dual infeasible" in v for v in report.violations)

    def test_detects_cs_capacity_violation(self, small_problem):
        """Positive price on an unsaturated uploader must be flagged."""
        result = AuctionSolver(epsilon=1e-9).solve(small_problem)
        prices = dict(result.prices)
        prices[200] = 50.0  # uploader 200 serves 1/1... raise on 100 instead
        prices[100] = 50.0
        broken = ScheduleResult(
            assignment={0: 100, 1: None, 2: 200, 3: None},  # 100 at 1/2 load
            prices=prices,
            etas={r: 100.0 for r in range(4)},  # keep dual feasible
            stats=result.stats,
        )
        report = check_complementary_slackness(small_problem, broken, tol=1e-6)
        assert not report.cs_capacity

    def test_detects_cs_assignment_violation(self, small_problem):
        """Assigned edge with λ + η ≠ v − w must be flagged."""
        broken = ScheduleResult(
            assignment={0: 100, 1: 100, 2: 200, 3: None},
            prices={100: 0.0, 200: 0.0},
            etas={0: 100.0, 1: 100.0, 2: 100.0, 3: 0.0},
            stats=None or ScheduleResult(assignment={}).stats,
        )
        report = check_complementary_slackness(small_problem, broken, tol=1e-6)
        assert not report.cs_assignment

    def test_detects_cs_request_violation(self, small_problem):
        """η > 0 on an unserved request must be flagged."""
        broken = ScheduleResult(
            assignment={0: None, 1: None, 2: None, 3: None},
            prices={100: 100.0, 200: 100.0},  # dual feasible via huge λ
            etas={0: 5.0, 1: 0.0, 2: 0.0, 3: 0.0},
        )
        report = check_complementary_slackness(small_problem, broken, tol=1e-6)
        assert not report.cs_request

    def test_verify_theorem1_rejects_infeasible_assignment(self, small_problem):
        result = AuctionSolver(epsilon=1e-9).solve(small_problem)
        result.assignment[1] = 200  # overloads uploader 200 (B=1, now 2)
        with pytest.raises(AssertionError):
            verify_theorem1(small_problem, result, epsilon=1e-9)


class TestGap:
    def test_gap_nonnegative_at_optimum(self, small_problem):
        result = AuctionSolver(epsilon=1e-9).solve(small_problem)
        assert duality_gap(small_problem, result) >= -1e-12

    def test_gap_positive_for_suboptimal_primal(self, small_problem):
        result = AuctionSolver(epsilon=1e-9).solve(small_problem)
        weaker = ScheduleResult(
            assignment={0: 100, 1: None, 2: None, 3: None},  # welfare 7 < 16
            prices=result.prices,
            etas=result.etas,
        )
        assert duality_gap(small_problem, weaker) > 5.0
