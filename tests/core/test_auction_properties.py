"""Property-based tests: the auction is optimal on arbitrary instances.

These are the numerical verification of Theorem 1: for random problems,
the auction's welfare matches the Hungarian oracle within n·ε, the
result is primal feasible, the duals are feasible, and complementary
slackness holds within ε.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.auction import AuctionSolver
from repro.core.duality import check_complementary_slackness, duality_gap, verify_theorem1
from repro.core.exact import solve_hungarian
from repro.core.problem import SchedulingProblem

EPS = 1e-6


@st.composite
def problems(draw):
    """Random scheduling problems with diverse shapes, including scarcity."""
    n_uploaders = draw(st.integers(1, 6))
    uploader_ids = [100 + i for i in range(n_uploaders)]
    capacities = [draw(st.integers(0, 3)) for _ in uploader_ids]
    n_requests = draw(st.integers(1, 25))
    p = SchedulingProblem()
    for uid, cap in zip(uploader_ids, capacities):
        p.set_capacity(uid, cap)
    for r in range(n_requests):
        k = draw(st.integers(0, n_uploaders))
        chosen = draw(
            st.permutations(uploader_ids).map(lambda perm: perm[:k])
        )
        candidates = {}
        for uid in chosen:
            cost = draw(
                st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False)
            )
            candidates[uid] = round(cost, 3)
        valuation = round(
            draw(st.floats(0.0, 12.0, allow_nan=False, allow_infinity=False)), 3
        )
        p.add_request(peer=r, chunk=f"c{r}", valuation=valuation, candidates=candidates)
    return p


@settings(max_examples=60, deadline=None)
@given(problem=problems(), mode=st.sampled_from(["gauss-seidel", "jacobi"]))
def test_auction_matches_hungarian_within_eps(problem, mode):
    result = AuctionSolver(epsilon=EPS, mode=mode).solve(problem)
    result.check_feasible(problem)
    optimum = solve_hungarian(problem).welfare(problem)
    welfare = result.welfare(problem)
    assert welfare >= optimum - problem.n_requests * EPS - 1e-9
    assert welfare <= optimum + 1e-9  # feasible ⇒ can't beat the optimum


@settings(max_examples=40, deadline=None)
@given(problem=problems(), mode=st.sampled_from(["gauss-seidel", "jacobi"]))
def test_theorem1_certificates(problem, mode):
    result = AuctionSolver(epsilon=EPS, mode=mode).solve(problem)
    report = verify_theorem1(problem, result, epsilon=EPS)
    assert report.optimal, report.violations[:5]


@settings(max_examples=40, deadline=None)
@given(problem=problems())
def test_duality_gap_bounds(problem):
    result = AuctionSolver(epsilon=EPS, mode="gauss-seidel").solve(problem)
    gap = duality_gap(problem, result)
    assert -1e-9 <= gap <= result.n_served() * EPS + 1e-9


@settings(max_examples=30, deadline=None)
@given(problem=problems())
def test_prices_nonnegative_and_bounded_by_values(problem):
    """λ_u ≥ 0, and no winner pays more than its valuation allows."""
    result = AuctionSolver(epsilon=EPS, mode="jacobi").solve(problem)
    for price in result.prices.values():
        assert price >= 0.0
    for r, uploader in result.assignment.items():
        if uploader is None:
            continue
        value = problem.edge_value(r, uploader)
        # Winner's utility at the final price stays ≥ −ε.
        assert value - result.prices[uploader] >= -EPS - 1e-9


@settings(max_examples=30, deadline=None)
@given(problem=problems())
def test_gauss_seidel_and_jacobi_agree(problem):
    gs = AuctionSolver(epsilon=EPS, mode="gauss-seidel").solve(problem)
    jac = AuctionSolver(epsilon=EPS, mode="jacobi").solve(problem)
    assert gs.welfare(problem) == pytest.approx(
        jac.welfare(problem), abs=2 * problem.n_requests * EPS + 1e-9
    )


@settings(max_examples=30, deadline=None)
@given(problem=problems(), seed=st.integers(0, 100))
def test_idempotent_across_runs(problem, seed):
    """The solver is deterministic: same problem ⇒ same assignment."""
    a = AuctionSolver(epsilon=EPS, mode="jacobi").solve(problem)
    b = AuctionSolver(epsilon=EPS, mode="jacobi").solve(problem)
    assert a.assignment == b.assignment
    assert a.prices == b.prices
