"""Tests for the primal-dual auction (Alg. 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.auction import (
    AuctionNonConvergence,
    AuctionSolver,
    PriceTrace,
)
from repro.core.exact import solve_hungarian
from repro.core.problem import SchedulingProblem, random_problem

MODES = ("gauss-seidel", "jacobi")


@pytest.fixture(params=MODES)
def mode(request):
    return request.param


class TestKnownOptima:
    def test_small_problem_optimal(self, small_problem, small_problem_optimum, mode):
        result = AuctionSolver(epsilon=1e-9, mode=mode).solve(small_problem)
        result.check_feasible(small_problem)
        assert result.welfare(small_problem) == pytest.approx(small_problem_optimum)

    def test_never_serves_negative_utility(self, small_problem, mode):
        result = AuctionSolver(epsilon=1e-9, mode=mode).solve(small_problem)
        assert result.assignment[3] is None  # v − w = −1 at its only edge

    def test_single_request_single_uploader(self, mode):
        p = SchedulingProblem()
        p.set_capacity(10, 1)
        p.add_request(1, "a", 5.0, {10: 2.0})
        result = AuctionSolver(mode=mode).solve(p)
        assert result.assignment[0] == 10
        assert result.welfare(p) == pytest.approx(3.0)

    def test_contention_highest_value_wins(self, mode):
        """Two requests, one slot: the higher-surplus request must win."""
        p = SchedulingProblem()
        p.set_capacity(10, 1)
        p.add_request(1, "a", 8.0, {10: 1.0})  # surplus 7
        p.add_request(2, "b", 5.0, {10: 1.0})  # surplus 4
        result = AuctionSolver(epsilon=1e-6, mode=mode).solve(p)
        assert result.assignment[0] == 10
        assert result.assignment[1] is None
        # The price must have been bid up beyond what the loser pays.
        assert result.prices[10] >= 4.0 - 1e-6

    def test_spreads_across_uploaders(self, mode):
        """Capacity-1 uploaders force the optimum to spread requests."""
        p = SchedulingProblem()
        p.set_capacity(10, 1)
        p.set_capacity(20, 1)
        p.add_request(1, "a", 9.0, {10: 1.0, 20: 2.0})
        p.add_request(2, "b", 9.0, {10: 1.0, 20: 2.0})
        result = AuctionSolver(epsilon=1e-6, mode=mode).solve(p)
        assigned = {result.assignment[0], result.assignment[1]}
        assert assigned == {10, 20}
        assert result.welfare(p) == pytest.approx(15.0)

    def test_empty_problem(self, mode):
        p = SchedulingProblem()
        p.set_capacity(10, 2)
        result = AuctionSolver(mode=mode).solve(p)
        assert result.assignment == {}
        assert result.welfare(p) == 0.0

    def test_request_without_candidates_unserved(self, mode):
        p = SchedulingProblem()
        p.set_capacity(10, 1)
        p.add_request(1, "a", 5.0, {})
        p.add_request(2, "b", 5.0, {10: 1.0})
        result = AuctionSolver(mode=mode).solve(p)
        assert result.assignment[0] is None
        assert result.assignment[1] == 10

    def test_zero_capacity_uploader_ignored(self, mode):
        p = SchedulingProblem()
        p.set_capacity(10, 0)
        p.set_capacity(20, 1)
        p.add_request(1, "a", 5.0, {10: 0.1, 20: 1.0})
        result = AuctionSolver(mode=mode).solve(p)
        assert result.assignment[0] == 20


class TestEpsilonZeroPaperMode:
    def test_untied_instance_still_optimal(self, small_problem, small_problem_optimum, mode):
        result = AuctionSolver(epsilon=0.0, mode=mode).solve(small_problem)
        assert result.welfare(small_problem) == pytest.approx(small_problem_optimum)

    def test_exact_tie_goes_dormant_and_terminates(self, mode):
        """Two identical options tie exactly: with ε=0 the bid equals the
        price, the bidder waits (paper rule), and the auction still ends."""
        p = SchedulingProblem()
        p.set_capacity(10, 1)
        p.set_capacity(20, 1)
        p.add_request(1, "a", 5.0, {10: 1.0, 20: 1.0})
        result = AuctionSolver(epsilon=0.0, mode=mode).solve(p)
        # ties at price 0 with positive utility: bid = λ ⇒ dormant forever
        # OR assigned if the implementation's argmax committed first.
        assert result.stats.converged
        # Whatever happened, feasibility and price sanity hold.
        result.check_feasible(p)


class TestDiagnostics:
    def test_budget_exhaustion_raises(self, mode):
        rng = np.random.default_rng(0)
        p = random_problem(rng, n_requests=50, n_uploaders=3, max_candidates=3)
        solver = AuctionSolver(
            epsilon=1e-12,
            mode=mode,
            max_bids=3,
            max_rounds=1,
        )
        with pytest.raises(AuctionNonConvergence):
            solver.solve(p)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AuctionSolver(epsilon=-1.0)
        with pytest.raises(ValueError):
            AuctionSolver(mode="bogus")

    def test_stats_counters_populated(self, small_problem, mode):
        result = AuctionSolver(epsilon=1e-9, mode=mode).solve(small_problem)
        assert result.stats.bids_submitted >= 3
        assert result.stats.converged

    def test_price_trace_recorded(self, small_problem):
        trace = PriceTrace()
        AuctionSolver(epsilon=1e-9, mode="jacobi", trace=trace).solve(small_problem)
        assert len(trace.times) >= 1
        times, prices = trace.series(100)
        assert len(times) == len(prices)

    def test_price_update_callback(self, mode):
        p = SchedulingProblem()
        p.set_capacity(10, 1)
        p.add_request(1, "a", 8.0, {10: 1.0})
        p.add_request(2, "b", 5.0, {10: 1.0})
        updates = []
        AuctionSolver(
            epsilon=1e-6, mode=mode, on_price_update=lambda t, u, pr: updates.append((u, pr))
        ).solve(p)
        assert updates
        assert all(u == 10 for u, _ in updates)
        prices = [pr for _, pr in updates]
        assert prices == sorted(prices)  # prices never decrease


class TestWarmStart:
    def test_initial_prices_respected(self, mode):
        p = SchedulingProblem()
        p.set_capacity(10, 1)
        p.set_capacity(20, 1)
        p.add_request(1, "a", 5.0, {10: 1.0, 20: 1.5})
        # Price 10 out of reach: the request must go to 20.
        result = AuctionSolver(epsilon=1e-9, mode=mode).solve(
            p, initial_prices={10: 100.0}
        )
        assert result.assignment[0] == 20

    def test_negative_initial_prices_clamped(self, mode):
        p = SchedulingProblem()
        p.set_capacity(10, 1)
        p.add_request(1, "a", 5.0, {10: 1.0})
        result = AuctionSolver(mode=mode).solve(p, initial_prices={10: -5.0})
        assert result.assignment[0] == 10


class TestModesAgree:
    @pytest.mark.parametrize("seed", range(5))
    def test_same_welfare_both_modes(self, seed):
        rng = np.random.default_rng(seed)
        p = random_problem(rng, n_requests=60, n_uploaders=8, max_candidates=5)
        gs = AuctionSolver(epsilon=1e-7, mode="gauss-seidel").solve(p)
        jac = AuctionSolver(epsilon=1e-7, mode="jacobi").solve(p)
        assert gs.welfare(p) == pytest.approx(jac.welfare(p), abs=1e-4)

    def test_auto_mode_picks_and_solves(self, small_problem, small_problem_optimum):
        result = AuctionSolver(mode="auto").solve(small_problem)
        assert result.welfare(small_problem) == pytest.approx(small_problem_optimum)


class TestScarcity:
    """Outside Theorem 1's sufficiency assumption the auction must still
    terminate and match the optimum (with adequate ε)."""

    @pytest.mark.parametrize("seed", range(3))
    def test_heavy_contention_reaches_optimum(self, seed, mode):
        rng = np.random.default_rng(seed)
        p = random_problem(
            rng,
            n_requests=80,
            n_uploaders=4,
            max_candidates=3,
            capacity_range=(1, 3),
        )
        result = AuctionSolver(epsilon=0.01, mode=mode).solve(p)
        result.check_feasible(p)
        optimum = solve_hungarian(p).welfare(p)
        assert result.welfare(p) >= optimum - 80 * 0.01 - 1e-9
