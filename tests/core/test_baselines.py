"""Tests for the baseline schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.auction import AuctionSolver
from repro.core.baselines import (
    LocalityRetryScheduler,
    NetworkAgnosticScheduler,
    RandomScheduler,
    SimpleLocalityScheduler,
    UtilityGreedyScheduler,
)
from repro.core.problem import SchedulingProblem, random_problem


def contended_problem():
    """Three requests competing for one cheap uploader (B=1) plus a dearer one."""
    p = SchedulingProblem()
    p.set_capacity(10, 1)  # cheap
    p.set_capacity(20, 2)  # expensive
    p.add_request(1, "a", 8.0, {10: 0.5, 20: 4.0})
    p.add_request(2, "b", 6.0, {10: 0.5, 20: 4.0})
    p.add_request(3, "c", 4.0, {10: 0.5, 20: 4.0})
    return p


class TestSimpleLocality:
    def test_requests_cheapest_neighbor(self, small_problem):
        result = SimpleLocalityScheduler().schedule(small_problem)
        # r0's cheapest is 100 (cost 1 < 2), r2's cheapest is 200 (1 < 4).
        assert result.assignment[0] == 100
        assert result.assignment[2] == 200

    def test_serves_negative_utility_edges(self, small_problem):
        """The strawman ignores valuations: r3 (v−w = −1) still gets served."""
        result = SimpleLocalityScheduler().schedule(small_problem)
        assert result.assignment[3] == 200 or result.assignment[2] == 200
        # Whoever got 200, locality filled it with the more urgent request:
        # r2 (v=5) beats r3 (v=2).
        assert result.assignment[2] == 200
        assert result.assignment[3] is None

    def test_single_shot_drops_overflow(self):
        """All three pile on the cheap uploader; the two less urgent are
        dropped even though uploader 20 has room — the paper's strawman."""
        result = SimpleLocalityScheduler().schedule(contended_problem())
        assert result.assignment[0] == 10  # most urgent wins the hotspot
        assert result.assignment[1] is None
        assert result.assignment[2] is None

    def test_urgency_priority_at_uploader(self):
        p = SchedulingProblem()
        p.set_capacity(10, 1)
        p.add_request(1, "a", 2.0, {10: 0.5})
        p.add_request(2, "b", 9.0, {10: 0.5})
        result = SimpleLocalityScheduler().schedule(p)
        assert result.assignment[1] == 10
        assert result.assignment[0] is None


class TestLocalityRetry:
    def test_overflow_retries_next_cheapest(self):
        result = LocalityRetryScheduler().schedule(contended_problem())
        assert result.assignment[0] == 10
        assert result.assignment[1] == 20
        assert result.assignment[2] == 20

    def test_serves_weakly_more_than_single_shot(self, rng):
        for _ in range(5):
            p = random_problem(rng, n_requests=40, n_uploaders=5, capacity_range=(1, 2))
            single = SimpleLocalityScheduler().schedule(p).n_served()
            retry = LocalityRetryScheduler().schedule(p).n_served()
            assert retry >= single


class TestAgnostic:
    def test_deterministic_given_rng(self, small_problem):
        a = NetworkAgnosticScheduler(np.random.default_rng(3)).schedule(small_problem)
        b = NetworkAgnosticScheduler(np.random.default_rng(3)).schedule(small_problem)
        assert a.assignment == b.assignment

    def test_feasible(self, rng):
        p = random_problem(rng, n_requests=50, n_uploaders=6, capacity_range=(1, 2))
        NetworkAgnosticScheduler(rng).schedule(p).check_feasible(p)

    def test_retry_mode_serves_more(self, rng):
        p = random_problem(rng, n_requests=60, n_uploaders=4, capacity_range=(1, 2))
        single = NetworkAgnosticScheduler(np.random.default_rng(1)).schedule(p)
        retry = NetworkAgnosticScheduler(np.random.default_rng(1), retries=True).schedule(p)
        assert retry.n_served() >= single.n_served()

    def test_ignores_cost_on_average(self, rng):
        """Agnostic picks expensive uploaders as readily as cheap ones;
        locality must achieve lower total cost on the same instance."""
        p = random_problem(rng, n_requests=100, n_uploaders=8, max_candidates=6)

        def total_cost(result):
            return sum(
                p.cost_of_edge(r, u)
                for r, u in result.assignment.items()
                if u is not None
            )

        locality_cost = total_cost(SimpleLocalityScheduler().schedule(p))
        agnostic_cost = total_cost(NetworkAgnosticScheduler(rng).schedule(p))
        assert locality_cost < agnostic_cost


class TestGreedy:
    def test_known_optimum_when_greedy_suffices(self, small_problem, small_problem_optimum):
        result = UtilityGreedyScheduler().schedule(small_problem)
        assert result.welfare(small_problem) == pytest.approx(small_problem_optimum)

    def test_never_serves_negative(self, rng):
        p = random_problem(rng, n_requests=40, n_uploaders=5,
                           valuation_range=(0.0, 2.0), cost_range=(3.0, 10.0))
        result = UtilityGreedyScheduler().schedule(p)
        assert result.n_served() == 0

    def test_auction_weakly_beats_greedy(self, rng):
        """The auction is optimal per instance, so it can't lose to greedy."""
        for _ in range(8):
            p = random_problem(rng, n_requests=40, n_uploaders=5, capacity_range=(1, 2))
            auction = AuctionSolver(epsilon=1e-7).solve(p).welfare(p)
            greedy = UtilityGreedyScheduler().schedule(p).welfare(p)
            assert auction >= greedy - 40 * 1e-7 - 1e-9


class TestRandom:
    def test_feasible_and_deterministic(self, rng):
        p = random_problem(rng, n_requests=50, n_uploaders=5, capacity_range=(1, 2))
        a = RandomScheduler(np.random.default_rng(7)).schedule(p)
        b = RandomScheduler(np.random.default_rng(7)).schedule(p)
        a.check_feasible(p)
        assert a.assignment == b.assignment

    def test_positive_only_mode(self, rng):
        p = random_problem(rng, n_requests=50, n_uploaders=5,
                           valuation_range=(0.0, 2.0), cost_range=(3.0, 10.0))
        result = RandomScheduler(rng, positive_only=True).schedule(p)
        assert result.n_served() == 0

    def test_auction_beats_random_on_welfare(self, rng):
        p = random_problem(rng, n_requests=80, n_uploaders=8, capacity_range=(1, 3))
        auction = AuctionSolver(epsilon=1e-7).solve(p).welfare(p)
        rand = RandomScheduler(rng).schedule(p).welfare(p)
        assert auction >= rand
