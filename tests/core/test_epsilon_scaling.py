"""Tests for the ε-scaling auction driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.epsilon_scaling import ScaledAuctionSolver
from repro.core.exact import solve_hungarian
from repro.core.problem import random_problem


class TestScaling:
    def test_known_optimum(self, small_problem, small_problem_optimum):
        solver = ScaledAuctionSolver(epsilon_final=1e-6)
        result = solver.solve(small_problem)
        assert result.welfare(small_problem) == pytest.approx(small_problem_optimum)

    def test_runs_multiple_phases(self, small_problem):
        solver = ScaledAuctionSolver(epsilon_final=1e-3, theta=4.0)
        solver.solve(small_problem)
        assert len(solver.phases) >= 3
        epsilons = [p.epsilon for p in solver.phases]
        assert epsilons == sorted(epsilons, reverse=True)
        assert epsilons[-1] == pytest.approx(1e-3)

    def test_guarantee_holds_even_with_fallback(self, rng):
        """Whether or not the warm start strands prices, the returned
        result is within n·ε of the optimum."""
        for _ in range(6):
            p = random_problem(rng, n_requests=60, n_uploaders=5, capacity_range=(1, 2))
            solver = ScaledAuctionSolver(epsilon_final=1e-4)
            result = solver.solve(p)
            result.check_feasible(p)
            optimum = solve_hungarian(p).welfare(p)
            assert result.welfare(p) >= optimum - p.n_requests * 1e-4 - 1e-9

    def test_total_bids_accumulates(self, small_problem):
        solver = ScaledAuctionSolver(epsilon_final=1e-3)
        solver.solve(small_problem)
        assert solver.total_bids() == sum(p.bids for p in solver.phases)

    def test_scheduler_protocol_alias(self, small_problem):
        solver = ScaledAuctionSolver(epsilon_final=1e-6)
        assert solver.schedule(small_problem).welfare(small_problem) == pytest.approx(
            solver.solve(small_problem).welfare(small_problem)
        )

    def test_explicit_initial_epsilon(self, small_problem):
        solver = ScaledAuctionSolver(epsilon_final=0.01, epsilon_initial=0.02, theta=2.0)
        solver.solve(small_problem)
        assert solver.phases[0].epsilon == pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScaledAuctionSolver(epsilon_final=0.0)
        with pytest.raises(ValueError):
            ScaledAuctionSolver(theta=1.0)

    def test_contended_instance_matches_oracle(self):
        rng = np.random.default_rng(9)
        p = random_problem(rng, n_requests=120, n_uploaders=4, capacity_range=(1, 2))
        result = ScaledAuctionSolver(epsilon_final=0.001).solve(p)
        optimum = solve_hungarian(p).welfare(p)
        assert result.welfare(p) >= optimum - 120 * 0.001 - 1e-9
