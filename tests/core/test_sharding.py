"""Unit tests for the region-sharded auction driver (core/sharding.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AuctionSolver,
    ScheduleResult,
    ShardedAuctionScheduler,
    ShardedAuctionSolver,
    boundary_uploaders,
    make_scheduler,
    plan_shards,
    random_problem,
    rows_view,
)
from repro.p2p.config import SystemConfig


def _assert_byte_identical(a: ScheduleResult, b: ScheduleResult) -> None:
    assert np.array_equal(a.assignment_array(), b.assignment_array())
    assert np.array_equal(a.price_arrays()[0], b.price_arrays()[0])
    assert np.array_equal(a.price_arrays()[1], b.price_arrays()[1])
    assert np.array_equal(a.eta_arrays()[1], b.eta_arrays()[1])
    assert a.stats == b.stats


class TestShardPlan:
    def test_partition_by_region_mod(self):
        regions = np.array([0, 3, 1, 2, 5, 1])
        plan = plan_shards(regions, 3)
        assert np.array_equal(plan.shard_of_row, regions % 3)
        assert plan.n_shards == 3
        assert np.array_equal(plan.shard_sizes(), [2, 2, 2])
        assert plan.n_nonempty() == 3
        # rows() are ascending and cover every row exactly once.
        seen = []
        for shard in range(plan.n_shards):
            rows = plan.rows(shard)
            assert np.all(np.diff(rows) > 0)
            assert np.all(plan.shard_of_row[rows] == shard)
            seen.extend(rows.tolist())
        assert sorted(seen) == list(range(len(regions)))

    def test_single_shard_collapses(self):
        plan = plan_shards(np.array([4, 7, 0]), 1)
        assert plan.n_nonempty() == 1
        assert np.array_equal(plan.rows(0), [0, 1, 2])

    def test_empty_regions(self):
        plan = plan_shards(np.empty(0, dtype=np.int64), 2)
        assert plan.n_nonempty() == 0
        assert plan.shard_sizes().sum() == 0

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError, match="n_shards"):
            plan_shards(np.array([0, 1]), 0)


class TestRowsView:
    def test_slices_rows_in_global_uploader_space(self, small_problem):
        csr = small_problem.csr()
        rows = np.array([0, 2])
        view = rows_view(csr, rows)
        assert view.n_requests == 2
        # Shared uploader axis: same ids/capacity arrays, no remapping.
        assert view.uploaders is csr.uploaders
        assert view.capacity is csr.capacity
        for local, original in enumerate(rows):
            assert np.array_equal(
                view.values[view.row(local)], csr.values[csr.row(original)]
            )
            assert np.array_equal(
                view.uploader_index[view.row(local)],
                csr.uploader_index[csr.row(original)],
            )

    def test_capacity_override(self, small_problem):
        csr = small_problem.csr()
        remaining = np.array([1, 0])
        view = rows_view(csr, np.array([1]), capacity=remaining)
        assert view.capacity is remaining

    def test_empty_selection(self, small_problem):
        csr = small_problem.csr()
        view = rows_view(csr, np.empty(0, dtype=np.int64))
        assert view.n_requests == 0 and view.n_edges == 0


class TestBoundaryUploaders:
    def test_shared_uploader_is_boundary(self, small_problem):
        csr = small_problem.csr()
        # Rows 0,1 in shard 0; rows 2,3 in shard 1: uploader 100 (rows
        # 0,1,2) and 200 (rows 0,2,3) both straddle the cut.
        plan = plan_shards(np.array([0, 0, 1, 1]), 2)
        mask = boundary_uploaders(csr, plan)
        assert mask.all()
        # Rows 0,2 vs 1,3: uploader 100 still straddles; so does 200.
        plan = plan_shards(np.array([0, 1, 0, 1]), 2)
        assert boundary_uploaders(csr, plan).all()

    def test_private_uploaders(self, small_problem):
        csr = small_problem.csr()
        plan = plan_shards(np.zeros(4, dtype=np.int64), 2)  # all in shard 0
        assert not boundary_uploaders(csr, plan).any()

    def test_empty_problem(self):
        from repro.core import SchedulingProblem

        problem = SchedulingProblem()
        problem.set_capacity(100, 1)
        csr = problem.csr()
        plan = plan_shards(np.empty(0, dtype=np.int64), 2)
        assert not boundary_uploaders(csr, plan).any()


class TestShardedAuctionSolver:
    def test_invalid_construction(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardedAuctionSolver(n_shards=0)

    def test_region_length_mismatch(self, small_problem):
        solver = ShardedAuctionSolver(epsilon=0.01, n_shards=2)
        with pytest.raises(ValueError, match="regions"):
            solver.solve(small_problem, np.array([0, 1]))

    def test_single_shard_short_circuits(self, small_problem):
        flat = AuctionSolver(epsilon=0.01).solve(small_problem)
        solver = ShardedAuctionSolver(epsilon=0.01, n_shards=1)
        res = solver.solve(small_problem, np.arange(4))
        _assert_byte_identical(res, flat)
        assert solver.last_report.fallback == "short-circuit"

    def test_degenerate_partition_short_circuits(self, small_problem):
        flat = AuctionSolver(epsilon=0.01).solve(small_problem)
        solver = ShardedAuctionSolver(epsilon=0.01, n_shards=4)
        res = solver.solve(small_problem, np.full(4, 8))  # all → shard 0
        _assert_byte_identical(res, flat)
        assert solver.last_report.fallback == "short-circuit"

    def test_small_problem_sharded_optimal(
        self, small_problem, small_problem_optimum
    ):
        solver = ShardedAuctionSolver(epsilon=0.01, n_shards=2)
        res = solver.solve(small_problem, np.array([0, 0, 1, 1]))
        res.check_feasible(small_problem)
        assert res.welfare(small_problem) == pytest.approx(
            small_problem_optimum, abs=4 * 0.01
        )
        report = solver.last_report
        assert report.fallback == ""
        assert report.n_shards == 2
        assert report.shard_sizes == (2, 2)
        assert report.n_boundary_uploaders == 2
        assert report.coordination_rounds >= 1

    @pytest.mark.parametrize("n_shards", [2, 3, 5])
    def test_random_problems_within_certificate(self, n_shards):
        epsilon = 0.01
        rng = np.random.default_rng(99)
        for trial in range(8):
            problem = random_problem(
                rng,
                n_requests=int(rng.integers(5, 60)),
                n_uploaders=int(rng.integers(2, 12)),
                max_candidates=4,
            )
            regions = rng.integers(0, 6, size=problem.n_requests)
            flat = AuctionSolver(epsilon=epsilon).solve(problem)
            solver = ShardedAuctionSolver(epsilon=epsilon, n_shards=n_shards)
            res = solver.solve(problem, regions)
            res.check_feasible(problem)
            gap = abs(flat.welfare(problem) - res.welfare(problem))
            assert gap <= problem.n_requests * epsilon + 1e-6, (
                f"trial {trial}: gap {gap} ({solver.last_report})"
            )

    def test_warm_start_accepted(self, small_problem):
        solver = ShardedAuctionSolver(epsilon=0.01, n_shards=2)
        warm = solver.solve(
            small_problem,
            np.array([0, 0, 1, 1]),
            initial_prices={100: 0.5},
        )
        warm.check_feasible(small_problem)

    def test_budget_exhaustion_falls_back_flat(self, small_problem):
        """Zero coordination budget → flat fallback, warm from λ̂.

        The merged boundary prices seed the fallback solve; on this
        instance the warm result passes the feasibility/CS certificate
        (``fallback_warm``), so no cold re-solve runs and the welfare
        still matches the flat optimum within the n·ε guarantee.
        """
        flat = AuctionSolver(epsilon=0.01).solve(small_problem)
        solver = ShardedAuctionSolver(
            epsilon=0.01, n_shards=2, max_coordination_rounds=0
        )
        res = solver.solve(small_problem, np.array([0, 0, 1, 1]))
        report = solver.last_report
        assert report.fallback == "coordination-budget"
        assert report.fallback_warm
        res.check_feasible(small_problem)
        assert res.welfare(small_problem) == pytest.approx(
            flat.welfare(small_problem), abs=4 * 0.01
        )

    def test_stall_detection_falls_back_flat(self, monkeypatch):
        """A cycling coordination loop bails early, not at the budget.

        With the stall window tightened to one round, the first
        non-improving violation count trips the bail-out, reported as
        ``coordination-stall``.  On this adversarial instance the λ̂
        warm start fails the certificate (stale boundary prices on
        slack uploaders survive the repair attempts), so the cold flat
        retry runs and the result is the exact cold flat solve.
        """
        from repro.core import sharding

        monkeypatch.setattr(sharding, "_STALL_LIMIT", 1)
        rng = np.random.default_rng(27)
        problem = random_problem(
            rng,
            n_requests=int(rng.integers(10, 50)),
            n_uploaders=int(rng.integers(2, 8)),
            max_candidates=4,
        )
        regions = rng.integers(0, 4, size=problem.n_requests)
        solver = ShardedAuctionSolver(epsilon=0.01, n_shards=3)
        res = solver.solve(problem, regions)
        report = solver.last_report
        assert report.fallback == "coordination-stall"
        res.check_feasible(problem)
        flat = AuctionSolver(epsilon=0.01).solve(problem)
        gap = abs(flat.welfare(problem) - res.welfare(problem))
        assert gap <= problem.n_requests * 0.01 + 1e-6
        if not report.fallback_warm:
            assert np.array_equal(
                res.assignment_array(), flat.assignment_array()
            )
        # This problem genuinely cycles: under the default window it
        # still bails — but after a handful of rounds, nowhere near the
        # 40-round budget the pre-stall-detection loop would burn.
        monkeypatch.setattr(sharding, "_STALL_LIMIT", 5)
        fresh = ShardedAuctionSolver(epsilon=0.01, n_shards=3)
        fresh.solve(problem, regions)
        assert fresh.last_report.fallback == "coordination-stall"
        assert fresh.last_report.coordination_rounds < 40

    def test_plan_cache_revalidates(self, small_problem):
        solver = ShardedAuctionSolver(epsilon=0.01, n_shards=2)
        regions = np.array([0, 0, 1, 1])
        solver.solve(small_problem, regions)
        first = solver._plan
        solver.solve(small_problem, regions.copy())  # equal → cache hit
        assert solver._plan is first
        solver.solve(small_problem, np.array([0, 1, 0, 1]))  # changed
        assert solver._plan is not first

    def test_plan_cache_identity_fast_path(self, small_problem):
        # The store's memoized ``regions_of`` hands back the same
        # read-only array while nothing churned; the solver keeps it by
        # reference and revalidates by identity with no element compare.
        solver = ShardedAuctionSolver(epsilon=0.01, n_shards=2)
        regions = np.array([0, 0, 1, 1])
        regions.flags.writeable = False
        solver.solve(small_problem, regions)
        assert solver._plan_key is regions
        first = solver._plan
        solver.solve(small_problem, regions)  # same object → identity hit
        assert solver._plan is first
        # A writable column is still defensively copied.
        mutable = np.array([0, 1, 0, 1])
        solver.solve(small_problem, mutable)
        assert solver._plan_key is not mutable

    def test_adaptive_stall_budget(self, monkeypatch):
        from repro.core import sharding

        assert sharding._stall_limit(2) == 2
        assert sharding._stall_limit(5) == 3
        assert sharding._stall_limit(64) == 7
        # A pinned module override wins regardless of partition size.
        monkeypatch.setattr(sharding, "_STALL_LIMIT", 1)
        assert sharding._stall_limit(64) == 1

    def test_zero_capacity_uploaders_never_assigned(self):
        rng = np.random.default_rng(5)
        problem = random_problem(rng, n_requests=20, n_uploaders=6)
        zeroed = 10_000  # random_problem ids start at 10_000
        problem.set_capacity(zeroed, 0)
        solver = ShardedAuctionSolver(epsilon=0.01, n_shards=3)
        res = solver.solve(problem, rng.integers(0, 3, size=20))
        res.check_feasible(problem)
        assert zeroed not in res.assignment_array()


class TestShardedAuctionScheduler:
    def test_registry(self):
        scheduler = make_scheduler("auction-sharded", n_shards=2)
        assert isinstance(scheduler, ShardedAuctionScheduler)
        assert scheduler.name == "auction-sharded"
        assert scheduler.supports_warm_start

    def test_default_regions_are_request_peers(self, small_problem):
        # Without a region_fn the requesting peer id buckets the rows.
        flat = AuctionSolver(epsilon=0.01).solve(small_problem)
        scheduler = ShardedAuctionScheduler(epsilon=0.01, n_shards=2)
        res = scheduler.schedule(small_problem)
        res.check_feasible(small_problem)
        gap = abs(flat.welfare(small_problem) - res.welfare(small_problem))
        assert gap <= 4 * 0.01 + 1e-6
        assert scheduler.last_report.n_shards == 2

    def test_region_fn_used(self, small_problem):
        calls = []

        def region_fn(peers):
            calls.append(np.asarray(peers).copy())
            return np.zeros(len(peers), dtype=np.int64)

        scheduler = ShardedAuctionScheduler(
            epsilon=0.01, n_shards=2, region_fn=region_fn
        )
        scheduler.schedule(small_problem)
        assert len(calls) == 1
        assert np.array_equal(calls[0], [1, 2, 3, 4])
        # All rows in one region → the solver short-circuited flat.
        assert scheduler.last_report.fallback == "short-circuit"


class TestConfigValidation:
    def test_defaults_off(self):
        config = SystemConfig.tiny()
        assert not config.sharded_solve and config.shard_count == 0
        config.validate()

    def test_sharded_requires_auction(self):
        config = SystemConfig.tiny(
            sharded_solve=True, scheduler="locality"
        )
        with pytest.raises(ValueError, match="sharded_solve"):
            config.validate()

    def test_negative_shard_count_rejected(self):
        with pytest.raises(ValueError, match="shard_count"):
            SystemConfig.tiny(shard_count=-1).validate()

    def test_sharded_auction_config_valid(self):
        SystemConfig.tiny(sharded_solve=True, shard_count=4).validate()

    def test_negative_shard_workers_rejected(self):
        with pytest.raises(ValueError, match="shard_workers"):
            SystemConfig.tiny(shard_workers=-1).validate()

    def test_shard_workers_require_sharded_solve(self):
        with pytest.raises(ValueError, match="shard_workers"):
            SystemConfig.tiny(shard_workers=2).validate()

    def test_parallel_sharded_config_valid(self):
        SystemConfig.tiny(
            sharded_solve=True, shard_count=4, shard_workers=2
        ).validate()
