"""Tests for the scheduler registry and adapters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scheduler import (
    AuctionScheduler,
    ChunkScheduler,
    HungarianScheduler,
    LPScheduler,
    available_schedulers,
    make_scheduler,
)


class TestRegistry:
    def test_all_names_instantiable(self):
        rng = np.random.default_rng(0)
        for name in available_schedulers():
            scheduler = make_scheduler(name, rng=rng)
            assert isinstance(scheduler, ChunkScheduler)
            assert scheduler.name == name

    def test_expected_names_present(self):
        names = available_schedulers()
        for expected in ("auction", "locality", "locality-retry", "agnostic",
                         "greedy", "random", "hungarian", "lp"):
            assert expected in names

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("nope")

    def test_kwargs_forwarded(self):
        scheduler = make_scheduler("auction", epsilon=0.5, mode="jacobi")
        assert scheduler.epsilon == 0.5
        assert scheduler.mode == "jacobi"


class TestAdapters:
    def test_auction_scheduler_optimal(self, small_problem, small_problem_optimum):
        result = AuctionScheduler(epsilon=1e-9).schedule(small_problem)
        assert result.welfare(small_problem) == pytest.approx(small_problem_optimum)

    def test_hungarian_scheduler(self, small_problem, small_problem_optimum):
        result = HungarianScheduler().schedule(small_problem)
        assert result.welfare(small_problem) == pytest.approx(small_problem_optimum)

    def test_lp_scheduler(self, small_problem, small_problem_optimum):
        result = LPScheduler().schedule(small_problem)
        assert result.welfare(small_problem) == pytest.approx(small_problem_optimum)

    def test_all_schedulers_feasible_on_small_problem(self, small_problem):
        rng = np.random.default_rng(1)
        for name in available_schedulers():
            result = make_scheduler(name, rng=rng).schedule(small_problem)
            result.check_feasible(small_problem)
