"""Pins for the CSR-vectorized jacobi auction and dual computation.

The CSR port is held to a stronger standard than the theorem bound: on
the same problem it must reproduce the padded dense implementation
*exactly* (same assignment, prices and duals), because both follow the
identical round/tie-break semantics.  Gauss-seidel remains the
sequential-semantics reference and only agrees within ``n·ε``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.auction import AuctionSolver, _segment_max
from repro.core.exact import solve_hungarian
from repro.core.problem import SchedulingProblem, random_problem

EPSILON = 1e-6


def skewed_problem(rng: np.random.Generator, n_requests=60, n_uploaders=25):
    """Instance with heavily skewed candidate counts (the padding worst case)."""
    p = SchedulingProblem()
    ids = [10_000 + i for i in range(n_uploaders)]
    for u in ids:
        p.set_capacity(u, int(rng.integers(0, 3)))
    for r in range(n_requests):
        # A few requests see almost every uploader; most see one or two.
        k = n_uploaders if r % 10 == 0 else int(rng.integers(1, 3))
        chosen = rng.choice(n_uploaders, size=min(k, n_uploaders), replace=False)
        candidates = {
            ids[int(j)]: float(rng.uniform(0, 10)) for j in chosen
        }
        p.add_request(r, f"c{r}", float(rng.uniform(0.5, 12.0)), candidates)
    return p


class TestSegmentMax:
    def test_basic_segments(self):
        x = np.array([1.0, 3.0, 2.0, 7.0, 5.0])
        indptr = np.array([0, 2, 2, 5])
        out = _segment_max(x, indptr)
        assert out[0] == 3.0
        assert out[1] == -np.inf  # empty segment
        assert out[2] == 7.0

    def test_all_empty(self):
        out = _segment_max(np.empty(0), np.array([0, 0, 0]))
        assert np.all(np.isneginf(out))


class TestJacobiCSRvsDense:
    @pytest.mark.parametrize("seed", range(12))
    def test_identical_outcomes_random(self, seed):
        p = random_problem(
            np.random.default_rng(seed), n_requests=70, n_uploaders=10, max_candidates=6
        )
        a = AuctionSolver(epsilon=EPSILON, mode="jacobi").solve(p)
        b = AuctionSolver(epsilon=EPSILON, mode="jacobi-dense").solve(p)
        assert a.assignment == b.assignment
        assert a.prices == b.prices
        assert a.etas == b.etas
        assert a.stats.bids_submitted == b.stats.bids_submitted
        assert a.stats.rounds == b.stats.rounds

    @pytest.mark.parametrize("seed", range(6))
    def test_identical_outcomes_skewed(self, seed):
        p = skewed_problem(np.random.default_rng(100 + seed))
        a = AuctionSolver(epsilon=EPSILON, mode="jacobi").solve(p)
        b = AuctionSolver(epsilon=EPSILON, mode="jacobi-dense").solve(p)
        assert a.assignment == b.assignment
        assert a.prices == b.prices

    def test_matches_hungarian_within_bound(self):
        for seed in range(8):
            p = random_problem(np.random.default_rng(seed), n_requests=50)
            result = AuctionSolver(epsilon=EPSILON, mode="jacobi").solve(p)
            result.check_feasible(p)
            optimum = solve_hungarian(p).welfare(p)
            assert result.welfare(p) >= optimum - p.n_requests * EPSILON - 1e-9

    def test_gauss_seidel_welfare_within_n_eps(self):
        for seed in range(8):
            p = random_problem(np.random.default_rng(seed), n_requests=60)
            jac = AuctionSolver(epsilon=EPSILON, mode="jacobi").solve(p)
            gs = AuctionSolver(epsilon=EPSILON, mode="gauss-seidel").solve(p)
            # Both land in [optimum − n·ε, optimum], so they agree within n·ε.
            bound = p.n_requests * EPSILON + 1e-9
            assert abs(jac.welfare(p) - gs.welfare(p)) <= bound

    def test_warm_start_equivalence(self, small_problem):
        warm = {100: 0.5, 200: 0.25}
        a = AuctionSolver(epsilon=EPSILON, mode="jacobi").solve(small_problem, warm)
        b = AuctionSolver(epsilon=EPSILON, mode="jacobi-dense").solve(small_problem, warm)
        assert a.assignment == b.assignment
        assert a.prices == b.prices


class TestEmptyProblem:
    """Satellite fix: n == 0 must return a fully-populated result."""

    def make_empty(self):
        p = SchedulingProblem()
        p.set_capacity(7, 3)
        p.set_capacity(8, 0)
        return p

    @pytest.mark.parametrize("mode", ["jacobi", "jacobi-dense", "gauss-seidel"])
    def test_all_fields_populated(self, mode):
        result = AuctionSolver(mode=mode).solve(self.make_empty())
        assert result.assignment == {}
        assert result.prices == {7: 0.0, 8: 0.0}
        assert result.etas == {}
        assert result.stats is not None
        assert result.stats.converged
        assert result.stats.bids_submitted == 0

    @pytest.mark.parametrize("mode", ["jacobi", "jacobi-dense", "gauss-seidel"])
    def test_warm_start_prices_clamped_and_reported(self, mode):
        result = AuctionSolver(mode=mode).solve(
            self.make_empty(), initial_prices={7: 1.5, 8: -2.0}
        )
        assert result.prices == {7: 1.5, 8: 0.0}
        assert result.etas == {}


class TestEtasVectorized:
    """Satellite pin: vectorized _etas equals the per-request loop."""

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 5_000))
    def test_pinned_against_loop(self, seed):
        rng = np.random.default_rng(seed)
        p = random_problem(rng, n_requests=30, n_uploaders=8, capacity_range=(0, 3))
        lam = {
            u: float(rng.uniform(0, 5)) if rng.random() < 0.8 else 0.0
            for u in p.uploaders()
        }
        fast = AuctionSolver._etas(p, lam)
        slow = AuctionSolver._etas_reference(p, lam)
        assert fast.keys() == slow.keys()
        for r in fast:
            assert fast[r] == slow[r]

    def test_zero_capacity_excluded(self):
        p = SchedulingProblem()
        p.set_capacity(1, 0)
        p.set_capacity(2, 1)
        p.add_request(10, "a", 9.0, {1: 0.5, 2: 4.0})
        lam = {1: 0.0, 2: 1.0}
        # Only uploader 2 counts: eta = 9 - 4 - 1 = 4 (not 8.5 via u=1).
        assert AuctionSolver._etas(p, lam) == {0: 4.0}
        assert AuctionSolver._etas_reference(p, lam) == {0: 4.0}

    def test_empty_problem(self):
        p = SchedulingProblem()
        p.set_capacity(1, 2)
        assert AuctionSolver._etas(p, {1: 0.0}) == {}
