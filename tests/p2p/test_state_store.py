"""Staleness regression tests for the persistent peer-state store.

The store keeps columnar state alive across slots, so every mutation
path — admit, remove, churn departure, transfer, neighbor refill,
out-of-band session pokes — must invalidate or resync the right
version-keyed caches.  Each test mutates through one official path and
asserts the store converges back to the authoritative object graph
(:meth:`PeerStateStore.check_consistency` compares membership tables,
row bindings, capacity/ISP columns and missed bitmaps).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem


def build_system(n_peers=20, **overrides):
    system = P2PSystem(SystemConfig.tiny(seed=42, **overrides))
    system.populate_static(n_peers)
    return system


class TestMembershipPaths:
    def test_admit_updates_columns_and_versions(self):
        system = build_system(5)
        before = system.store.membership_version
        peer = system.add_watching_peer(video_id=0, upload_multiple=2.0)
        assert system.store.membership_version > before
        ids, caps = system.store.capacity_columns()
        assert ids[-1] == peer.peer_id
        assert caps[-1] == peer.upload_capacity_chunks
        assert system.store.isp_table()[peer.peer_id] == peer.isp
        assert peer.state_group is system.store.groups[0]
        assert peer.buffer.mask.base is not None  # bound into the matrix
        system.store.check_consistency(system.peers)

    def test_remove_frees_row_and_drops_caches(self):
        system = build_system(8)
        system.build_problem(system.now)  # populate candidate entries
        victim = next(p for p in system.peers.values() if not p.is_seed)
        pid = victim.peer_id
        row = victim.state_row
        group = victim.state_group
        epoch = system.store.candidate_epoch
        system.remove_peer(pid)
        assert pid not in system.store._cand
        assert system.store.candidate_epoch > epoch
        assert system.store.isp_table()[pid] == -1
        assert pid not in group.row_of
        assert row in group.bucket.free_rows
        assert not group.bucket.masks[row].any()  # zeroed for reuse
        # The departed peer keeps a private copy of its buffer.
        assert victim.buffer.mask.base is not group.bucket.masks
        ids, _ = system.store.capacity_columns()
        assert pid not in ids.tolist()
        system.store.check_consistency(system.peers)

    def test_row_recycling_rebinds_new_peer(self):
        system = build_system(6)
        victim = next(p for p in system.peers.values() if not p.is_seed)
        vid = victim.video.video_id
        row = victim.state_row
        system.remove_peer(victim.peer_id)
        newcomer = system.add_watching_peer(video_id=vid, upload_multiple=1.5)
        assert newcomer.state_row == row  # freed row reused
        newcomer.buffer.add(3)
        assert newcomer.state_group.bucket.masks[row, 3]
        system.store.check_consistency(system.peers)

    def test_churn_departures_keep_store_consistent(self):
        system = build_system(
            15, arrival_rate_per_s=1.0, early_departure_prob=0.6
        )
        versions = [system.tracker.version]
        for _ in range(8):
            system.run_slot(churn=True, remove_finished=True)
            system.store.check_consistency(system.peers, system.tracker)
            versions.append(system.tracker.version)
        assert system.departures > 0 and system.arrivals > 0
        assert versions[-1] > versions[0]  # tracker versioning advanced

    def test_bucket_growth_rebinds_every_buffer(self):
        system = build_system(3)
        # Admissions beyond the initial row capacity force matrix growth.
        for _ in range(30):
            system.add_watching_peer(video_id=0, upload_multiple=1.0)
        group = system.store.groups[0]
        for pid in group.row_of:
            peer = system.peers[pid]
            mask = peer.buffer.mask
            assert mask.base is group.bucket.masks or mask.base is group.bucket.masks.base
        system.store.check_consistency(system.peers)


class TestTransferPath:
    def test_transfers_write_through_to_matrix(self):
        system = build_system(20)
        system.run_slot()
        problem, _ = system.build_problem(system.now)
        result = system.scheduler.schedule(problem)
        system._apply_transfers(problem, result)
        for peer in system.peers.values():
            row = peer.state_row
            bucket = peer.state_group.bucket
            assert np.array_equal(
                bucket.masks[row, : peer.video.n_chunks], peer.buffer.mask
            ), peer.peer_id
        system.store.check_consistency(system.peers)


class TestNeighborRefill:
    def test_link_change_invalidates_candidate_entries(self):
        system = build_system(12)
        system.build_problem(system.now)  # build + cache entries
        watcher = next(
            p
            for p in system.peers.values()
            if p.watching and p.peer_id in system.store._cand
        )
        pid = watcher.peer_id
        neighbor = next(iter(system.overlay.neighbors(pid)))
        old_entry = system.store._cand[pid]
        epoch = system.store.candidate_epoch
        system.overlay.disconnect(pid, neighbor)
        system.build_problem(system.now)  # drains the dirty set
        assert system.store.candidate_epoch > epoch
        entry = system.store._cand.get(pid)
        if entry is not None:  # rebuilt lazily only if the peer requests
            assert neighbor not in entry[1].tolist()
            assert entry is not old_entry

    def test_refill_reconnects_and_store_sees_new_candidates(self):
        system = build_system(12)
        system.build_problem(system.now)
        watcher = next(p for p in system.peers.values() if p.watching)
        pid = watcher.peer_id
        for nb in list(system.overlay.neighbors(pid)):
            system.overlay.disconnect(pid, nb)
        assert system.overlay.wants_more(pid)
        assert pid in system.overlay.deficient_nodes()
        system._refill_neighbors()
        assert system.overlay.degree(pid) > 0
        # Equivalence after the refill: the rebuilt candidate tables
        # must match the reference construction exactly.
        ref, _ = system.build_problem_reference(system.now)
        new, _ = system.build_problem(system.now)
        assert ref.n_edges() == new.n_edges()

    def test_refill_skips_scan_when_nobody_deficient(self):
        system = build_system(4)
        # Force everyone (incl. seeds) to the degree target by shrinking it.
        deficient = system.overlay.deficient_nodes() - system.store.seed_ids
        if deficient:
            system._refill_neighbors()
        calls = []
        original = system.tracker.bootstrap_candidates
        system.tracker.bootstrap_candidates = lambda p: calls.append(p) or original(p)
        if not (system.overlay.deficient_nodes() - system.store.seed_ids):
            system._refill_neighbors()
            assert calls == []  # O(1) fast path: no tracker queries


class TestOutOfBandMutation:
    def test_direct_session_advance_is_resynced(self):
        """State mutated around the store (tests, benchmarks) is detected."""
        system = build_system(15)
        system.run_slot()
        watcher = next(p for p in system.peers.values() if p.watching)
        # Advance one session directly — the store column goes stale.
        watcher.session.advance_to(system.now + 3.0)
        ref, _ = system.build_problem_reference(system.now + 3.0)
        new, _ = system.build_problem(system.now + 3.0)
        assert ref.n_requests == new.n_requests
        bucket = watcher.state_group.bucket
        assert bucket.position[watcher.state_row] == watcher.session.position
        system.store.check_consistency(system.peers)

    def test_snapshot_restore_style_pokes_are_resynced(self):
        system = build_system(15)
        system.run(30.0)
        snap = {
            pid: (
                p.session.position,
                p.session.played,
                set(p.session.missed),
                p.session._last_advance,
            )
            for pid, p in system.peers.items()
            if p.session is not None
        }
        system._advance_playback(system.now + 5.0)
        for pid, (pos, played, missed, last) in snap.items():
            s = system.peers[pid].session
            s.position = pos
            s.played = played
            s.missed = set(missed)
            s._last_advance = last
        # The next batched advance must resync, not trust stale columns.
        due, missed_n = system._advance_playback(system.now + 5.0)
        twin = build_system(15)
        twin.run(30.0)
        due_t, missed_t = twin._advance_playback(twin.now + 5.0)
        assert (due, missed_n) == (due_t, missed_t)
        system.store.check_consistency(system.peers)


class TestVersionCounters:
    def test_membership_version_monotone_over_churn(self):
        system = build_system(10, arrival_rate_per_s=0.8, early_departure_prob=0.5)
        seen = [system.store.membership_version]
        for _ in range(5):
            system.run_slot(churn=True, remove_finished=True)
            seen.append(system.store.membership_version)
        assert seen == sorted(seen)

    def test_region_version_bumps_on_membership_changes(self):
        system = build_system(8)
        store = system.store
        v0 = store.region_version
        peer = _craft_peer(system, max(system.peers) + 1, system.catalog[0])
        system._admit(peer)
        v1 = store.region_version
        assert v1 > v0
        system.remove_peer(peer.peer_id)
        v2 = store.region_version
        assert v2 > v1
        victims = [p for p in system.peers.values() if not p.is_seed][:2]
        store.remove_batch(victims)
        assert store.region_version > v2

    def test_overlay_dirty_set_drained_by_build(self):
        system = build_system(8)
        system.build_problem(system.now)
        assert not system.overlay._dirty  # drained
        a, b = list(system.peers)[:2]
        system.overlay.disconnect(a, b)
        assert {a, b} <= system.overlay._dirty
        system.build_problem(system.now)
        assert not system.overlay._dirty


def _craft_peer(system, peer_id, video, start_time=None):
    """Hand-build a watcher Peer (bypassing the id counter) for _admit."""
    from repro.p2p.peer import Peer
    from repro.vod.buffer import ChunkBuffer
    from repro.vod.playback import PlaybackSession

    buffer = ChunkBuffer(video)
    session = PlaybackSession(
        video=video,
        buffer=buffer,
        start_time=system.now if start_time is None else start_time,
    )
    return Peer(
        peer_id=peer_id,
        isp=-1,
        video=video,
        upload_capacity_chunks=10,
        buffer=buffer,
        session=session,
        joined_at=system.now,
    )


class TestReviewRegressions:
    def test_non_monotone_admission_keeps_reference_request_order(self):
        """An out-of-order peer id must not break dict-order requests."""
        system = build_system(10)
        system.run(20.0)
        victim = next(p for p in system.peers.values() if not p.is_seed)
        freed_id = victim.peer_id
        system.remove_peer(freed_id)
        # Re-admitting a *smaller* id than the newest peer makes the
        # peers dict order diverge from ascending-id order.
        peer = _craft_peer(system, freed_id, system.catalog[0])
        system._admit(peer)
        assert not system.store._ids_monotone
        system.run(20.0)
        ref, ref_owner = system.build_problem_reference(system.now)
        new, new_owner = system.build_problem(system.now)
        assert ref_owner == new_owner
        import numpy as np

        assert np.array_equal(
            ref.request_peer_array(), new.request_peer_array()
        )
        assert ref.uploaders() == new.uploaders()
        system.store.check_consistency(system.peers, system.tracker)

    def test_last_advance_rewind_at_same_position_does_not_raise(self):
        """Benchmark-style _last_advance rewinds must not trip the guard."""
        system = build_system(12)
        system.run(20.0)
        t = system.now
        assert system._advance_playback(t + 0.001) == (0, 0)
        for p in system.peers.values():
            if p.session is not None:
                p.session._last_advance = t  # positions unchanged
        # The reference loop would advance fine; so must the batch.
        assert system._advance_playback(t + 0.0005) == (0, 0)

    def test_backwards_time_raises_before_any_bucket_advances(self):
        """Multi-bucket systems must validate all buckets up front."""
        from repro.vod.video import Video

        system = build_system(8)
        system.run(10.0)
        odd_video = Video(
            video_id=999,
            n_chunks=77,  # different chunk count → second StateBucket
            chunk_size_bytes=system.catalog[0].chunk_size_bytes,
            bitrate_bps=system.catalog[0].bitrate_bps,
        )
        odd = _craft_peer(
            system, max(system.peers) + 1, odd_video, start_time=system.now
        )
        system._admit(odd)
        assert len(system.store.buckets) == 2
        t = system.now
        system._advance_playback(t + 2.0)
        # Push only the odd session further ahead.
        odd.session.advance_to(t + 6.0)
        positions = {
            pid: p.session.position
            for pid, p in system.peers.items()
            if p.session is not None
        }
        import pytest

        with pytest.raises(ValueError, match="time went backwards"):
            system._advance_playback(t + 4.0)
        after = {
            pid: p.session.position
            for pid, p in system.peers.items()
            if p.session is not None
        }
        assert positions == after  # nothing advanced, in either bucket


class TestRegionColumn:
    """The region accessors the sharded solve path partitions on."""

    def test_regions_of_matches_peer_isps(self):
        system = build_system(12)
        ids = np.fromiter(system.peers, dtype=np.int64)
        regions = system.store.regions_of(ids)
        assert regions.dtype == np.int64
        for pid, region in zip(ids.tolist(), regions.tolist()):
            assert region == system.peers[pid].isp

    def test_regions_align_with_built_problem(self):
        system = build_system(12)
        system.run_slot()
        problem, _ = system.build_problem(system.now)
        if problem.n_requests == 0:
            pytest.skip("no requests this slot")
        regions = system.store.regions_of(problem.request_peer_array())
        assert len(regions) == problem.n_requests
        assert set(regions.tolist()) <= set(range(system.config.n_isps))

    def test_regions_of_memoized_by_identity_and_version(self):
        system = build_system(10)
        ids = np.fromiter(system.peers, dtype=np.int64)
        first = system.store.regions_of(ids)
        assert not first.flags.writeable
        # Same array object, same version → the memoized object itself.
        assert system.store.regions_of(ids) is first
        # An equal-but-distinct array misses the identity check.
        other = system.store.regions_of(ids.copy())
        assert other is not first
        assert np.array_equal(other, first)

    def test_regions_memo_invalidated_by_churn(self):
        system = build_system(10)
        ids = np.fromiter(system.peers, dtype=np.int64)
        first = system.store.regions_of(ids)
        victim = next(p for p in system.peers.values() if not p.is_seed)
        system.remove_peer(victim.peer_id)
        fresh = system.store.regions_of(ids)
        assert fresh is not first  # version bumped → recomputed
        assert fresh[ids.tolist().index(victim.peer_id)] == -1

    def test_touched_regions_row_level(self):
        from repro.p2p.state import SlotDelta

        system = build_system(10)
        table = system.store.isp_table()
        delta = SlotDelta()
        assert delta.touched_regions(table) == set()
        some = list(system.peers)[:3]
        delta.capacity_touched.extend(some)
        expected = {int(table[pid]) for pid in some}
        assert delta.touched_regions(table) == expected

    def test_touched_regions_coarse_flags_mean_all(self):
        from repro.p2p.state import SlotDelta

        table = np.zeros(4, dtype=np.int64)
        for flag in (
            "playback_moved",
            "costs_invalidated",
            "membership_changed",
            "capacity_changed",
        ):
            delta = SlotDelta()
            setattr(delta, flag, True)
            assert delta.touched_regions(table) is None, flag
