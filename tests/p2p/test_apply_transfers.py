"""Vectorized transfer-apply epilogue vs the per-edge reference loop.

``P2PSystem._apply_transfers`` (grouped bitmap writes, bincount traffic,
ISP-table classification) must leave the system in the *identical* state
as ``_apply_transfers_reference`` — same buffers, same upload/download
counters, same traffic matrix, same inter/intra split — across static,
churn and multi-video scenarios.  Likewise for the batched per-round
budget split in ``run_slot``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import SchedulingProblem
from repro.core.result import ScheduleResult
from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem
from repro.vod.playback import PlaybackSession

SCENARIOS = {
    "static": dict(n_peers=50, churn=False, overrides={}),
    "churn": dict(
        n_peers=50, churn=True,
        overrides=dict(arrival_rate_per_s=0.5, early_departure_prob=0.3),
    ),
    "multivideo": dict(n_peers=60, churn=False, overrides=dict(n_videos=8)),
}


def build_system(spec, seed=13):
    system = P2PSystem(SystemConfig.tiny(seed=seed, **spec["overrides"]))
    system.populate_static(spec["n_peers"])
    return system


def force_reference_epilogue(system):
    """Make ``system`` run the per-edge apply loop instead of the new path."""
    system._apply_transfers = (
        lambda problem, result: P2PSystem._apply_transfers_reference(
            system, problem, result
        )
    )


def state_snapshot(system):
    return dict(
        masks={pid: p.buffer.mask.copy() for pid, p in system.peers.items()},
        counts={pid: len(p.buffer) for pid, p in system.peers.items()},
        uploaded={pid: p.chunks_uploaded for pid, p in system.peers.items()},
        downloaded={pid: p.chunks_downloaded for pid, p in system.peers.items()},
        traffic=system.traffic_matrix.matrix(),
        sessions={
            pid: (p.session.position, p.session.played, frozenset(p.session.missed))
            for pid, p in system.peers.items()
            if p.session is not None
        },
        slots=[
            (
                m.welfare, m.n_requests, m.n_served,
                m.inter_isp_chunks, m.intra_isp_chunks,
                m.chunks_due, m.chunks_missed,
            )
            for m in system.collector.slots
        ],
    )


def assert_same_state(a, b):
    sa, sb = state_snapshot(a), state_snapshot(b)
    assert sa["slots"] == sb["slots"]
    assert np.array_equal(sa["traffic"], sb["traffic"])
    for key in ("counts", "uploaded", "downloaded", "sessions"):
        assert sa[key] == sb[key], key
    assert sa["masks"].keys() == sb["masks"].keys()
    for pid in sa["masks"]:
        assert np.array_equal(sa["masks"][pid], sb["masks"][pid]), pid


class TestApplyEquivalence:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_full_run_state_identical(self, name):
        spec = SCENARIOS[name]
        fast = build_system(spec)
        slow = build_system(spec)
        force_reference_epilogue(slow)
        for _ in range(6):
            fast.run_slot(churn=spec["churn"], remove_finished=spec["churn"])
            slow.run_slot(churn=spec["churn"], remove_finished=spec["churn"])
        assert_same_state(fast, slow)
        # Non-vacuous: something was actually transferred.
        assert fast.traffic_matrix.total() > 0

    def test_single_slot_return_values_match(self):
        spec = SCENARIOS["static"]
        fast = build_system(spec)
        slow = build_system(spec)
        fast.run_slot()
        slow.run_slot()
        budgets = dict(zip(*map(np.ndarray.tolist, fast._capacity_arrays())))
        problem_fast, _ = fast.build_problem(fast.now, capacities=budgets)
        problem_slow, _ = slow.build_problem(slow.now, capacities=budgets)
        result_fast = fast.scheduler.schedule(problem_fast)
        result_slow = slow.scheduler.schedule(problem_slow)
        assert result_fast.assignment == result_slow.assignment
        pair_fast = fast._apply_transfers(problem_fast, result_fast)
        pair_slow = slow._apply_transfers_reference(problem_slow, result_slow)
        assert pair_fast == pair_slow
        assert_same_state(fast, slow)

    def test_non_pair_chunk_keys_fall_back_to_reference(self):
        """Chunk keys the columnar path cannot columnize still apply."""
        system = build_system(SCENARIOS["static"])
        system.run_slot()
        watcher = next(p for p in system.peers.values() if p.watching)
        uploader = next(
            p for p in system.peers.values()
            if p.is_seed and p.video.video_id == watcher.video.video_id
        )
        index = int(np.nonzero(~watcher.buffer.mask)[0][0])  # not yet held
        problem = SchedulingProblem()
        problem.set_capacity(uploader.peer_id, 1)
        problem.add_request(
            peer=watcher.peer_id,
            chunk=("chunk", index),  # not an int pair → no chunk_pair_array
            valuation=5.0,
            candidates={uploader.peer_id: 1.0},
        )
        with pytest.raises(ValueError):
            problem.chunk_pair_array()
        result = ScheduleResult(assignment={0: uploader.peer_id})
        before = watcher.chunks_downloaded
        inter, intra = system._apply_transfers(problem, result)
        assert inter + intra == 1
        assert watcher.chunks_downloaded == before + 1
        assert watcher.buffer.holds(index)

    def test_empty_result_is_noop(self):
        system = build_system(SCENARIOS["static"])
        problem, _ = system.build_problem(system.now)
        empty = ScheduleResult(
            assignment={r: None for r in range(problem.n_requests)}
        )
        before = system.traffic_matrix.total()
        assert system._apply_transfers(problem, empty) == (0, 0)
        assert system.traffic_matrix.total() == before


class TestBudgetVectorization:
    @pytest.mark.parametrize("rounds", [1, 2, 3, 4, 7])
    def test_shares_match_scalar_round_budget(self, rounds):
        caps = np.array([0, 1, 2, 3, 5, 8, 13, 40, 41], dtype=np.int64)
        for r in range(rounds):
            shares = caps * (r + 1) // rounds - caps * r // rounds
            expected = [
                P2PSystem._round_budget(int(c), r, rounds) for c in caps
            ]
            assert shares.tolist() == expected

    def test_run_slot_budget_split_preserved_under_subrounds(self):
        spec = dict(n_peers=30, churn=False, overrides=dict(bid_rounds_per_slot=3))
        fast = build_system(spec)
        slow = build_system(spec)
        force_reference_epilogue(slow)
        for _ in range(4):
            fast.run_slot()
            slow.run_slot()
        assert_same_state(fast, slow)


class TestPlaybackBatchEquivalence:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_advance_batched_vs_loop_in_system(self, name):
        spec = SCENARIOS[name]
        fast = build_system(spec)
        slow = build_system(spec)
        slow_advance = PlaybackSession.advance_to_reference

        def looped_playback(to_time):
            due = missed = 0
            for peer in slow.peers.values():
                if peer.session is None or peer.session.start_time >= to_time:
                    continue
                stats = slow_advance(peer.session, to_time)
                due += stats.due
                missed += stats.missed
            return due, missed

        slow._advance_playback = looped_playback
        for _ in range(6):
            fast.run_slot(churn=spec["churn"], remove_finished=spec["churn"])
            slow.run_slot(churn=spec["churn"], remove_finished=spec["churn"])
        assert_same_state(fast, slow)
