"""Vectorized transfer-apply epilogue vs the per-edge reference loop.

``P2PSystem._apply_transfers`` (grouped bitmap writes, bincount traffic,
ISP-table classification) must leave the system in the *identical* state
as ``_apply_transfers_reference`` — same buffers, same upload/download
counters, same traffic matrix, same inter/intra split — across static,
churn and multi-video scenarios.  Likewise for the batched per-round
budget split in ``run_slot``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import SchedulingProblem
from repro.core.result import ScheduleResult
from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem
from repro.vod.playback import PlaybackSession

SCENARIOS = {
    "static": dict(n_peers=50, churn=False, overrides={}),
    "churn": dict(
        n_peers=50, churn=True,
        overrides=dict(arrival_rate_per_s=0.5, early_departure_prob=0.3),
    ),
    "multivideo": dict(n_peers=60, churn=False, overrides=dict(n_videos=8)),
}


def build_system(spec, seed=13):
    system = P2PSystem(SystemConfig.tiny(seed=seed, **spec["overrides"]))
    system.populate_static(spec["n_peers"])
    return system


def force_reference_epilogue(system):
    """Make ``system`` run the per-edge apply loop instead of the new path."""
    system._apply_transfers = (
        lambda problem, result: P2PSystem._apply_transfers_reference(
            system, problem, result
        )
    )


def state_snapshot(system):
    return dict(
        masks={pid: p.buffer.mask.copy() for pid, p in system.peers.items()},
        counts={pid: len(p.buffer) for pid, p in system.peers.items()},
        uploaded={pid: p.chunks_uploaded for pid, p in system.peers.items()},
        downloaded={pid: p.chunks_downloaded for pid, p in system.peers.items()},
        traffic=system.traffic_matrix.matrix(),
        sessions={
            pid: (p.session.position, p.session.played, frozenset(p.session.missed))
            for pid, p in system.peers.items()
            if p.session is not None
        },
        slots=[
            (
                m.welfare, m.n_requests, m.n_served,
                m.inter_isp_chunks, m.intra_isp_chunks,
                m.chunks_due, m.chunks_missed,
            )
            for m in system.collector.slots
        ],
    )


def assert_same_state(a, b):
    sa, sb = state_snapshot(a), state_snapshot(b)
    assert sa["slots"] == sb["slots"]
    assert np.array_equal(sa["traffic"], sb["traffic"])
    for key in ("counts", "uploaded", "downloaded", "sessions"):
        assert sa[key] == sb[key], key
    assert sa["masks"].keys() == sb["masks"].keys()
    for pid in sa["masks"]:
        assert np.array_equal(sa["masks"][pid], sb["masks"][pid]), pid


class TestApplyEquivalence:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_full_run_state_identical(self, name):
        spec = SCENARIOS[name]
        fast = build_system(spec)
        slow = build_system(spec)
        force_reference_epilogue(slow)
        for _ in range(6):
            fast.run_slot(churn=spec["churn"], remove_finished=spec["churn"])
            slow.run_slot(churn=spec["churn"], remove_finished=spec["churn"])
        assert_same_state(fast, slow)
        # Non-vacuous: something was actually transferred.
        assert fast.traffic_matrix.total() > 0

    def test_single_slot_return_values_match(self):
        spec = SCENARIOS["static"]
        fast = build_system(spec)
        slow = build_system(spec)
        fast.run_slot()
        slow.run_slot()
        budgets = dict(zip(*map(np.ndarray.tolist, fast._capacity_arrays())))
        problem_fast, _ = fast.build_problem(fast.now, capacities=budgets)
        problem_slow, _ = slow.build_problem(slow.now, capacities=budgets)
        result_fast = fast.scheduler.schedule(problem_fast)
        result_slow = slow.scheduler.schedule(problem_slow)
        assert result_fast.assignment == result_slow.assignment
        pair_fast = fast._apply_transfers(problem_fast, result_fast)
        pair_slow = slow._apply_transfers_reference(problem_slow, result_slow)
        assert pair_fast == pair_slow
        assert_same_state(fast, slow)

    def test_non_pair_chunk_keys_fall_back_to_reference(self):
        """Chunk keys the columnar path cannot columnize still apply."""
        system = build_system(SCENARIOS["static"])
        system.run_slot()
        watcher = next(p for p in system.peers.values() if p.watching)
        uploader = next(
            p for p in system.peers.values()
            if p.is_seed and p.video.video_id == watcher.video.video_id
        )
        index = int(np.nonzero(~watcher.buffer.mask)[0][0])  # not yet held
        problem = SchedulingProblem()
        problem.set_capacity(uploader.peer_id, 1)
        problem.add_request(
            peer=watcher.peer_id,
            chunk=("chunk", index),  # not an int pair → no chunk_pair_array
            valuation=5.0,
            candidates={uploader.peer_id: 1.0},
        )
        with pytest.raises(ValueError):
            problem.chunk_pair_array()
        result = ScheduleResult(assignment={0: uploader.peer_id})
        before = watcher.chunks_downloaded
        inter, intra = system._apply_transfers(problem, result)
        assert inter + intra == 1
        assert watcher.chunks_downloaded == before + 1
        assert watcher.buffer.holds(index)

    def test_empty_result_is_noop(self):
        system = build_system(SCENARIOS["static"])
        problem, _ = system.build_problem(system.now)
        empty = ScheduleResult(
            assignment={r: None for r in range(problem.n_requests)}
        )
        before = system.traffic_matrix.total()
        assert system._apply_transfers(problem, empty) == (0, 0)
        assert system.traffic_matrix.total() == before


class TestGroupedDelivery:
    """The store's per-bucket delivery writes vs the per-peer loop."""

    def _hand_problem(self, system, edges):
        """Problem with one request per (watcher, chunk, uploader) edge."""
        problem = SchedulingProblem()
        assignment = {}
        for r, (watcher, index, uploader) in enumerate(edges):
            problem.set_capacity(uploader.peer_id, len(edges))
            problem.add_request(
                peer=watcher.peer_id,
                chunk=(watcher.video.video_id, index),
                valuation=5.0,
                candidates={uploader.peer_id: 1.0},
            )
            assignment[r] = uploader.peer_id
        return problem, ScheduleResult(assignment=assignment)

    def _watchers_and_seed(self, system):
        by_video = {}
        for peer in system.peers.values():
            if peer.watching:
                by_video.setdefault(peer.video.video_id, []).append(peer)
        video_id, watchers = max(
            by_video.items(), key=lambda kv: (len(kv[1]), -kv[0])
        )
        seed = next(
            p for p in system.peers.values()
            if p.is_seed and p.video.video_id == video_id
        )
        return watchers, seed

    def test_interleaved_owner_runs(self):
        """A peer split across several runs accumulates across them."""
        system = build_system(SCENARIOS["static"])
        system.run_slot()
        watchers, seed = self._watchers_and_seed(system)
        roomy = [
            w for w in watchers if int((~w.buffer.mask).sum()) >= 2
        ]
        a, b = roomy[0], roomy[1]
        a_missing = np.nonzero(~a.buffer.mask)[0][:2].tolist()
        b_missing = np.nonzero(~b.buffer.mask)[0][:1].tolist()
        edges = [
            (a, int(a_missing[0]), seed),
            (b, int(b_missing[0]), seed),
            (a, int(a_missing[1]), seed),  # same owner, new run
        ]
        problem, result = self._hand_problem(system, edges)
        before_a, before_b = a.chunks_downloaded, b.chunks_downloaded
        inter, intra = system._apply_transfers(problem, result)
        assert inter + intra == 3
        assert a.chunks_downloaded == before_a + 2
        assert b.chunks_downloaded == before_b + 1
        assert all(a.buffer.holds(i) for i in a_missing)
        assert b.buffer.holds(b_missing[0])
        assert len(a.buffer) == int(a.buffer.mask.sum())

    def test_already_held_chunks_count_zero(self):
        system = build_system(SCENARIOS["static"])
        system.run_slot()
        watchers, seed = self._watchers_and_seed(system)
        w = watchers[0]
        held = int(np.nonzero(w.buffer.mask)[0][0])
        problem, result = self._hand_problem(system, [(w, held, seed)])
        before = w.chunks_downloaded
        count_before = len(w.buffer)
        system._apply_transfers(problem, result)
        assert w.chunks_downloaded == before
        assert len(w.buffer) == count_before

    def test_capped_buffer_uses_fallback_path(self):
        system = build_system(SCENARIOS["static"])
        system.run_slot()
        watchers, seed = self._watchers_and_seed(system)
        w = watchers[0]
        w.buffer.capacity_chunks = w.video.n_chunks  # capped, no eviction
        missing = int(np.nonzero(~w.buffer.mask)[0][0])
        problem, result = self._hand_problem(system, [(w, missing, seed)])
        before = w.chunks_downloaded
        system._apply_transfers(problem, result)
        assert w.chunks_downloaded == before + 1
        assert w.buffer.holds(missing)

    def test_deliver_runs_multi_run_batch(self):
        """Direct store contract: per-run new counts, count catch-up."""
        system = build_system(SCENARIOS["multivideo"])
        system.run_slot()
        movers = [p for p in system.peers.values() if p.watching][:3]
        chunks = []
        starts = []
        for peer in movers:
            starts.append(len(chunks))
            chunks.extend(np.nonzero(~peer.buffer.mask)[0][:2].tolist())
        starts = np.asarray(starts, dtype=np.int64)
        stops = np.append(starts[1:], len(chunks))
        counts_before = [len(p.buffer) for p in movers]
        added = system.store.deliver_runs(
            movers, starts, stops, np.asarray(chunks, dtype=np.int64)
        )
        assert added.tolist() == [2, 2, 2]
        for peer, before in zip(movers, counts_before):
            assert len(peer.buffer) == before + 2
            assert len(peer.buffer) == int(peer.buffer.mask.sum())
        system.store.check_consistency(system.peers, system.tracker)


class TestBudgetVectorization:
    @pytest.mark.parametrize("rounds", [1, 2, 3, 4, 7])
    def test_shares_match_scalar_round_budget(self, rounds):
        caps = np.array([0, 1, 2, 3, 5, 8, 13, 40, 41], dtype=np.int64)
        for r in range(rounds):
            shares = caps * (r + 1) // rounds - caps * r // rounds
            expected = [
                P2PSystem._round_budget(int(c), r, rounds) for c in caps
            ]
            assert shares.tolist() == expected

    def test_run_slot_budget_split_preserved_under_subrounds(self):
        spec = dict(n_peers=30, churn=False, overrides=dict(bid_rounds_per_slot=3))
        fast = build_system(spec)
        slow = build_system(spec)
        force_reference_epilogue(slow)
        for _ in range(4):
            fast.run_slot()
            slow.run_slot()
        assert_same_state(fast, slow)


class TestPlaybackBatchEquivalence:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_advance_batched_vs_loop_in_system(self, name):
        spec = SCENARIOS[name]
        fast = build_system(spec)
        slow = build_system(spec)
        slow_advance = PlaybackSession.advance_to_reference

        def looped_playback(to_time):
            due = missed = 0
            for peer in slow.peers.values():
                if peer.session is None or peer.session.start_time >= to_time:
                    continue
                stats = slow_advance(peer.session, to_time)
                due += stats.due
                missed += stats.missed
            return due, missed

        slow._advance_playback = looped_playback
        for _ in range(6):
            fast.run_slot(churn=spec["churn"], remove_finished=spec["churn"])
            slow.run_slot(churn=spec["churn"], remove_finished=spec["churn"])
        assert_same_state(fast, slow)
