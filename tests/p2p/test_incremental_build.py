"""Unit tests for the incremental cross-slot problem pipeline.

The property suite (``tests/properties/test_incremental_build_equiv.py``)
pins byte-identity wholesale; these tests pin the *mechanism*: which
mutation marks which peer row with which ``DELTA_*`` reason, how retry
suppression surfaces as row deletions/additions, when the pipeline falls
back to a full candidate rebuild, and the bench-facing snapshot/restore
and log-compaction plumbing.
"""

from __future__ import annotations

import numpy as np

from repro.net.linkmodel import LinkParams
from repro.p2p.config import SystemConfig
from repro.p2p.state import (
    _CAND_LOG_LIMIT,
    DELTA_ADMIT,
    DELTA_CANDIDATES,
    DELTA_CAPACITY,
    DELTA_DELIVERY,
    DELTA_REMOVE,
    DELTA_RETRY,
)
from repro.p2p.system import P2PSystem


def make_system(n_peers=20, slots=2, **overrides):
    config = SystemConfig.tiny(seed=7, incremental_build=True, **overrides)
    system = P2PSystem(config)
    system.populate_static(n_peers)
    for _ in range(slots):
        system.run_slot()
    return system


def assert_identical(a, b):
    """Byte-identity of two column-path problems (same producer order)."""
    assert a.n_requests == b.n_requests
    assert a.n_edges() == b.n_edges()
    ac, bc = a.csr(), b.csr()
    assert np.array_equal(ac.uploaders, bc.uploaders)
    assert np.array_equal(ac.capacity, bc.capacity)
    assert np.array_equal(a.request_peer_array(), b.request_peer_array())
    if a.n_requests:
        assert np.array_equal(a.chunk_pair_array(), b.chunk_pair_array())
    assert np.array_equal(ac.indptr, bc.indptr)
    assert np.array_equal(ac.values, bc.values)
    assert np.array_equal(ac.uploader_index, bc.uploader_index)


def double_build(system):
    """Cold rebuild vs delta patch on the current state; returns both."""
    now = system.now
    cold, _ = system.build_problem(now)
    delta = system.store.consume_delta()
    patched = system.patch_problem(system._prev_problem, delta, now)
    assert_identical(cold, patched)
    return cold, delta


class TestConfig:
    def test_defaults_off(self):
        config = SystemConfig()
        assert not config.incremental_build
        config.validate()

    def test_flag_enables_recording_and_trust(self):
        system = make_system(slots=0)
        assert system.store.record_delta
        assert system.store._sessions_trusted

    def test_cold_default_records_nothing(self):
        config = SystemConfig.tiny(seed=7)
        system = P2PSystem(config)
        system.populate_static(10)
        system.run_slot()
        delta = system.store.consume_delta()
        assert not delta.delivered_runs and not delta.playback_moved


class TestReasonCodes:
    def test_delivery_and_playback_marks(self):
        system = make_system(slots=1)
        system.run_slot()
        delta = system.store.consume_delta()
        reasons = delta.reasons()
        assert delta.playback_moved
        delivered = [
            pid for pid, code in reasons.items() if code & DELTA_DELIVERY
        ]
        assert delivered, "a steady slot delivers chunks"
        # Restore the accumulator contract for any later consumer.
        assert system.store.consume_delta().delivered_runs == []

    def test_admit_and_remove_marks(self):
        system = make_system()
        new_peer = system.add_watching_peer(video_id=0, upload_multiple=1.0)
        victim = next(
            pid for pid, p in system.peers.items()
            if not p.is_seed and pid != new_peer.peer_id
        )
        system.remove_peer(victim)
        delta = system.store.consume_delta()
        reasons = delta.reasons()
        assert reasons[new_peer.peer_id] & DELTA_ADMIT
        assert reasons[victim] & DELTA_REMOVE
        assert delta.membership_changed

    def test_capacity_marks(self):
        system = make_system()
        pid = next(pid for pid, p in system.peers.items() if not p.is_seed)
        system.set_upload_capacities({pid: 3})
        delta = system.store.consume_delta()
        assert delta.reasons()[pid] & DELTA_CAPACITY
        assert delta.capacity_changed

    def test_candidate_drop_marks_on_overlay_churn(self):
        system = make_system()
        # Build once so candidate tables exist, then tear a peer out of
        # the overlay: its surviving neighbors' tables must be dropped.
        double_build(system)
        victim = next(pid for pid, p in system.peers.items() if not p.is_seed)
        system.remove_peer(victim)
        cold, delta = double_build(system)
        dropped = [
            pid for pid, code in delta.reasons().items()
            if code & DELTA_CANDIDATES
        ]
        assert dropped, "overlay churn must drop neighbor candidate tables"
        assert victim not in dropped  # the victim's row is gone, not stale

    def test_cost_shock_invalidates_wholesale(self):
        system = make_system()
        double_build(system)
        system.scale_inter_isp_costs(2.0)
        cold, delta = double_build(system)
        assert delta.costs_invalidated
        # The full fallback installed fresh cost copies: next patch
        # splices forward again from the rebuilt caches.
        double_build(system)


class TestRetrySuppression:
    def _queue_one(self, system):
        """Park one real request triple in the retry queue."""
        problem, _ = system.build_problem(system.now)
        assert problem.n_requests > 0
        peers = problem.request_peer_array()
        pairs = problem.chunk_pair_array()
        csr = problem.csr()
        row = 0
        down = int(peers[row])
        vid, chunk = int(pairs[row][0]), int(pairs[row][1])
        up = int(csr.uploaders[csr.uploader_index[csr.indptr[row]]])
        system.retry_queue.push_failed(
            np.array([down]), np.array([up]),
            np.array([vid]), np.array([chunk]),
            slot=system.slot_index,
        )
        return down, up, vid, chunk

    def test_suppress_marks_and_row_deletion(self):
        system = make_system()
        down, _, vid, chunk = self._queue_one(system)
        cold, delta = double_build(system)
        assert down in delta.retry_added
        assert delta.reasons()[down] & DELTA_RETRY
        # The suppressed triple's row is deleted from the problem.
        peers = cold.request_peer_array()
        pairs = cold.chunk_pair_array()
        hit = (peers == down) & (pairs[:, 0] == vid) & (pairs[:, 1] == chunk)
        assert not hit.any()

    def test_surrender_reexposes_row(self):
        system = make_system()
        # Total loss on every pair, intra included (the bare call only
        # degrades the inter-ISP backbone): each retry attempt fails
        # until the TTL expires and the triple is surrendered.
        for isp in range(system.config.n_isps):
            system.set_link_conditions(LinkParams(loss_rate=1.0), isp_a=isp)
        down, _, vid, chunk = self._queue_one(system)
        double_build(system)  # suppression visible
        ttl = system.config.retry_ttl_slots
        for _ in range(ttl + 1):
            system.slot_index += 1
            system._process_retries(system.now)
        assert len(system.retry_queue) == 0, "TTL must surrender the triple"
        cold, delta = double_build(system)
        assert down in delta.retry_removed
        assert delta.reasons()[down] & DELTA_RETRY
        peers = cold.request_peer_array()
        pairs = cold.chunk_pair_array()
        hit = (peers == down) & (pairs[:, 0] == vid) & (pairs[:, 1] == chunk)
        assert hit.any(), "surrendered triple must re-enter the problem"

    def test_retry_delivery_reexposes_via_mark(self):
        system = make_system()
        down, *_ = self._queue_one(system)
        double_build(system)
        # Ideal links: the due re-attempt succeeds and drains the queue.
        system.slot_index += system.config.retry_backoff_base_slots
        stats = system._process_retries(system.now)
        assert stats["succeeded"] >= 1
        cold, delta = double_build(system)
        assert down in delta.retry_removed


class TestSessionTrust:
    def test_out_of_band_mutation_must_be_declared(self):
        system = make_system()
        double_build(system)
        peer = next(p for p in system.peers.values() if p.session is not None)
        # Rewind the session object behind the store's back, as the
        # bench harness does between timing repeats.
        peer.session._last_advance = max(
            0.0, peer.session._last_advance - system.config.slot_seconds
        )
        system.store.mark_sessions_dirty()
        double_build(system)  # resyncs, still byte-identical


class TestSnapshotRestore:
    def test_repeat_patches_identical(self):
        system = make_system()
        double_build(system)
        system.run_slot()
        now = system.now
        cold, _ = system.build_problem(now)
        delta = system.store.consume_delta()
        snap = system.store.snapshot_delta_state()
        first = system.patch_problem(system._prev_problem, delta, now)
        assert_identical(cold, first)
        for _ in range(3):
            system.store.restore_delta_state(snap)
            again = system.patch_problem(system._prev_problem, delta, now)
            assert_identical(first, again)


class TestCandLogCompaction:
    def test_trim_rebases_and_drops_laggards(self):
        system = make_system()
        double_build(system)  # caches exist at log position 0
        store = system.store
        store._cand_log.extend(range(_CAND_LOG_LIMIT + 10))
        store._trim_cand_log()
        assert len(store._cand_log) <= _CAND_LOG_LIMIT
        # Every surviving cache either kept pace (cursor rebased into
        # range) or was dropped rather than pinning the log.
        for group in store.groups.values():
            cache = group._cand_cache
            if cache is not None:
                assert 0 <= cache.log_pos <= len(store._cand_log)
        # The pipeline recovers: next build rebuilds dropped caches.
        system.run_slot()
        double_build(system)
