"""Unit tests for the cross-slot retry queue (columnar pending-edge store)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.p2p.retry import RetryBatch, RetryQueue


def _push_one(queue, slot=0, down=1, up=2, video=0, chunk=5):
    queue.push_failed(
        np.array([down]), np.array([up]), np.array([video]),
        np.array([chunk]), slot,
    )


class TestBackoff:
    def test_exponential_doubling_capped(self):
        queue = RetryQueue(backoff_base_slots=1, backoff_cap_slots=4)
        assert [queue.backoff_slots(a) for a in range(1, 6)] == [1, 2, 4, 4, 4]

    def test_base_scales(self):
        queue = RetryQueue(backoff_base_slots=2, backoff_cap_slots=16)
        assert [queue.backoff_slots(a) for a in range(1, 5)] == [2, 4, 8, 16]

    def test_huge_attempt_does_not_overflow(self):
        queue = RetryQueue(backoff_base_slots=1, backoff_cap_slots=8)
        assert queue.backoff_slots(10_000) == 8

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryQueue().backoff_slots(0)

    @pytest.mark.parametrize(
        "kwargs", [dict(backoff_base_slots=0), dict(backoff_cap_slots=0),
                   dict(ttl_slots=0)]
    )
    def test_constructor_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryQueue(**kwargs)


class TestLifecycle:
    def test_fresh_push_due_after_first_backoff(self):
        queue = RetryQueue(backoff_base_slots=2, ttl_slots=10)
        _push_one(queue, slot=3)
        assert len(queue) == 1
        batch, _ = queue.pop_due(4)  # due at 3 + 2 = 5
        assert len(batch) == 0 and len(queue) == 1
        batch, expire = queue.pop_due(5)
        assert len(batch) == 1 and len(queue) == 0
        assert batch.attempts.tolist() == [1]
        assert expire.tolist() == [13]

    def test_requeue_advances_attempts_keeps_expiry(self):
        queue = RetryQueue(backoff_base_slots=1, backoff_cap_slots=4,
                           ttl_slots=10)
        _push_one(queue, slot=0)
        batch, expire = queue.pop_due(1)
        queue.requeue(batch, np.array([True]), 1, expire)
        batch2, expire2 = queue.pop_due(3)  # backoff(2) = 2 slots
        assert batch2.attempts.tolist() == [2]
        assert expire2.tolist() == [10]  # original expiry, not reset

    def test_requeue_noop_on_all_success(self):
        queue = RetryQueue()
        _push_one(queue, slot=0)
        batch, expire = queue.pop_due(1)
        queue.requeue(batch, np.array([False]), 1, expire)
        assert len(queue) == 0

    def test_surrender_at_ttl(self):
        queue = RetryQueue(backoff_base_slots=1, ttl_slots=3)
        _push_one(queue, slot=2, down=9, video=1, chunk=7)
        down, video, chunk = queue.pop_surrendered(4)
        assert len(down) == 0  # expires at 2 + 3 = 5
        down, video, chunk = queue.pop_surrendered(5)
        assert down.tolist() == [9]
        assert video.tolist() == [1]
        assert chunk.tolist() == [7]
        assert len(queue) == 0

    def test_evict_departed_either_endpoint(self):
        queue = RetryQueue()
        queue.push_failed(
            np.array([1, 3, 5]), np.array([2, 4, 6]),
            np.zeros(3, dtype=np.int64), np.arange(3), 0,
        )
        online = np.ones(7, dtype=bool)
        online[2] = False  # uploader of edge 0
        online[5] = False  # downstream of edge 2
        assert queue.evict_departed(online) == 2
        assert queue.pending_triples()[0].tolist() == [3]

    def test_evict_out_of_range_ids_count_as_offline(self):
        queue = RetryQueue()
        _push_one(queue, down=100, up=1)
        assert queue.evict_departed(np.ones(5, dtype=bool)) == 1
        assert len(queue) == 0

    def test_drop_downstream_chunks(self):
        queue = RetryQueue()
        queue.push_failed(
            np.array([1, 1, 2]), np.array([9, 9, 9]),
            np.array([0, 0, 0]), np.array([4, 5, 4]), 0,
        )
        dropped = queue.drop_downstream_chunks(
            np.array([1]), np.array([0]), np.array([4])
        )
        assert dropped == 1
        down, _, chunk = queue.pending_triples()
        assert sorted(zip(down.tolist(), chunk.tolist())) == [(1, 5), (2, 4)]


class TestSnapshot:
    def test_roundtrip_is_exact_and_isolated(self):
        queue = RetryQueue()
        _push_one(queue, slot=0, down=1, up=2)
        snap = queue.snapshot()
        _push_one(queue, slot=1, down=3, up=4)
        queue.pop_due(50)
        queue.restore(snap)
        assert len(queue) == 1
        batch, _ = queue.pop_due(50)
        assert batch.down.tolist() == [1]
        # The snapshot holds copies: restoring twice works.
        queue.restore(snap)
        assert len(queue) == 1

    def test_empty_batch_type(self):
        batch, expire = RetryQueue().pop_due(10)
        assert isinstance(batch, RetryBatch)
        assert len(batch) == 0 and len(expire) == 0
