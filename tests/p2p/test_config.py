"""Tests for system configuration presets and derived quantities."""

from __future__ import annotations

import pytest

from repro.p2p.config import SystemConfig


class TestPaperDerived:
    def test_paper_chunk_arithmetic(self):
        """640 Kbps / 8 KB chunks ⇒ 10 chunks/s ⇒ 100 chunks per 10 s slot."""
        config = SystemConfig.paper()
        assert config.chunks_per_second == pytest.approx(640_000 / 8 / 8192)
        assert config.chunks_per_slot == pytest.approx(config.chunks_per_second * 10)
        assert config.chunks_per_video == 2560

    def test_paper_defaults_match_section5(self):
        config = SystemConfig.paper()
        assert config.n_isps == 5
        assert config.n_videos == 100
        assert config.neighbor_target == 30
        assert config.prefetch_chunks == 100
        assert config.seeds_per_isp_per_video == 2
        assert config.seed_upload_multiple == 8.0
        assert (config.peer_upload_min_multiple, config.peer_upload_max_multiple) == (1.0, 4.0)
        assert config.zipf_alpha == 0.78 and config.zipf_q == 4.0
        assert config.early_departure_prob == 0.0
        assert (config.inter_cost_mean, config.inter_cost_low, config.inter_cost_high) == (5.0, 1.0, 10.0)
        assert (config.intra_cost_mean, config.intra_cost_low, config.intra_cost_high) == (1.0, 0.0, 2.0)

    def test_capacity_multiples(self):
        config = SystemConfig.paper()
        per_slot = config.chunks_per_slot
        assert config.peer_capacity_chunks(1.0) == round(per_slot)
        assert config.peer_capacity_chunks(8.0) == round(8 * per_slot)
        assert config.peer_capacity_chunks(0.001) == 1  # floor at 1


class TestPresets:
    def test_bench_scales_down(self):
        bench = SystemConfig.bench()
        paper = SystemConfig.paper()
        assert bench.n_videos < paper.n_videos
        assert bench.chunks_per_video < paper.chunks_per_video
        assert bench.prefetch_chunks >= bench.chunks_per_slot

    def test_tiny_is_smallest(self):
        tiny = SystemConfig.tiny()
        tiny.validate()
        assert tiny.n_videos <= 5
        assert tiny.chunks_per_video <= 64

    def test_overrides_apply(self):
        config = SystemConfig.bench(seed=9, scheduler="locality", n_isps=3)
        assert config.seed == 9
        assert config.scheduler == "locality"
        assert config.n_isps == 3

    def test_with_scheduler_copies(self):
        config = SystemConfig.bench()
        other = config.with_scheduler("greedy")
        assert other.scheduler == "greedy"
        assert config.scheduler == "auction"


class TestValidation:
    def test_prefetch_below_consumption_rejected(self):
        config = SystemConfig.paper(prefetch_chunks=10)
        with pytest.raises(ValueError, match="never keep up"):
            config.validate()

    def test_bad_departure_probability(self):
        with pytest.raises(ValueError):
            SystemConfig.paper(early_departure_prob=1.5).validate()

    def test_inverted_upload_range(self):
        with pytest.raises(ValueError):
            SystemConfig.paper(
                peer_upload_min_multiple=4.0, peer_upload_max_multiple=1.0
            ).validate()

    def test_bad_bid_rounds(self):
        with pytest.raises(ValueError):
            SystemConfig.paper(bid_rounds_per_slot=0).validate()

    def test_presets_all_valid(self):
        for preset in (SystemConfig.paper(), SystemConfig.bench(), SystemConfig.tiny()):
            preset.validate()
