"""Columnar vs per-request slot problem construction equivalence.

``P2PSystem.build_problem`` (columnar CSR assembly) must produce the
identical problem as ``build_problem_reference`` (the per-request
dict/loop path): same request sequence, same valuations bit-for-bit,
same candidate edge sets and costs, same capacities.  Candidate *order*
within a request is canonicalized (the columnar path sorts by uploader
id), so edges are compared as mappings.
"""

from __future__ import annotations

import pytest

from repro.core.auction import AuctionSolver
from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem


def assert_same_slot_problem(system, now, capacities=None):
    ref, ref_owner = system.build_problem_reference(now, capacities=capacities)
    col, col_owner = system.build_problem(now, capacities=capacities)
    assert ref_owner == col_owner
    assert ref.n_requests == col.n_requests
    assert ref.n_edges() == col.n_edges()
    assert ref.uploaders() == col.uploaders()
    for u in ref.uploaders():
        assert ref.capacity_of(u) == col.capacity_of(u)
    for r in range(ref.n_requests):
        assert ref.request(r) == col.request(r)  # peer, chunk, exact valuation
        ref_edges = dict(zip(ref.candidates_of(r).tolist(), ref.costs_of(r).tolist()))
        col_edges = dict(zip(col.candidates_of(r).tolist(), col.costs_of(r).tolist()))
        assert ref_edges == col_edges
    return ref, col


class TestStaticEquivalence:
    def test_fresh_static_network(self):
        system = P2PSystem(SystemConfig.tiny(seed=11))
        system.populate_static(25)
        # Sample costs once so both paths read identical cached values.
        system.build_problem(system.now)
        ref, col = assert_same_slot_problem(system, system.now)
        assert ref.n_requests > 0  # non-vacuous

    def test_after_running_slots(self):
        system = P2PSystem(SystemConfig.tiny(seed=5))
        system.populate_static(30)
        system.run(duration_seconds=40)
        assert_same_slot_problem(system, system.now)

    def test_with_subround_budgets(self):
        system = P2PSystem(SystemConfig.tiny(seed=7, bid_rounds_per_slot=3))
        system.populate_static(20)
        system.run(duration_seconds=20)
        rounds = system.config.bid_rounds_per_slot
        budgets = {
            p.peer_id: system._round_budget(p.upload_capacity_chunks, 1, rounds)
            for p in system.peers.values()
        }
        assert_same_slot_problem(system, system.now, capacities=budgets)

    def test_zero_budget_peers_equal_missing_entries(self):
        """Satellite: skipping zero entries must not change the problem."""
        system = P2PSystem(SystemConfig.tiny(seed=9))
        system.populate_static(15)
        system.run(duration_seconds=20)
        full = {p.peer_id: 0 for p in system.peers.values()}
        some = list(full)[: len(full) // 2]
        for pid in some:
            full[pid] = system.peers[pid].upload_capacity_chunks
        sparse = {pid: cap for pid, cap in full.items() if cap > 0}
        p_full, _ = system.build_problem(system.now, capacities=full)
        p_sparse, _ = system.build_problem(system.now, capacities=sparse)
        assert p_full.uploaders() == p_sparse.uploaders()
        for u in p_full.uploaders():
            assert p_full.capacity_of(u) == p_sparse.capacity_of(u)
        assert p_full.n_requests == p_sparse.n_requests


class TestChurnEquivalence:
    def test_under_churn(self):
        system = P2PSystem(SystemConfig.tiny(seed=21, arrival_rate_per_s=0.4))
        system.populate_static(15)
        system.run(duration_seconds=60, churn=True)
        assert_same_slot_problem(system, system.now)


class TestSolverOnBothBuilds:
    def test_welfare_agrees_within_n_eps(self):
        system = P2PSystem(SystemConfig.tiny(seed=13))
        system.populate_static(30)
        system.run(duration_seconds=30)
        system.build_problem(system.now)  # warm the cost cache
        ref, _ = system.build_problem_reference(system.now)
        col, _ = system.build_problem(system.now)
        eps = 1e-6
        res_ref = AuctionSolver(epsilon=eps, mode="jacobi").solve(ref)
        res_col = AuctionSolver(epsilon=eps, mode="jacobi").solve(col)
        bound = ref.n_requests * eps + 1e-9
        assert abs(res_ref.welfare(ref) - res_col.welfare(col)) <= bound


class TestRunSlotBudgets:
    def test_slot_metrics_unchanged_by_budget_pruning(self):
        """Two identical systems produce identical slot series."""
        a = P2PSystem(SystemConfig.tiny(seed=17, bid_rounds_per_slot=2))
        b = P2PSystem(SystemConfig.tiny(seed=17, bid_rounds_per_slot=2))
        a.populate_static(20)
        b.populate_static(20)
        ca = a.run(duration_seconds=40)
        cb = b.run(duration_seconds=40)
        for ma, mb in zip(ca.slots, cb.slots):
            assert ma.welfare == pytest.approx(mb.welfare)
            assert ma.n_served == mb.n_served
            assert ma.n_requests == mb.n_requests
