"""Mid-slot arrivals: due/missed accounting from the session's own start.

A session admitted *inside* a slot (user calls, startup-delayed
arrivals) must not be advanced from the slot boundary: the batched
playback pass has to charge it exactly the chunks due since its own
``start_time`` — and skip it entirely while ``start_time >= to_time``.
These tests pin the accounting against hand-computed values and the
per-chunk reference loop.
"""

from __future__ import annotations

import pytest

from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem


def build_system(n_peers=12, seed=5):
    system = P2PSystem(SystemConfig.tiny(seed=seed))
    system.populate_static(n_peers)
    return system


class TestMidSlotArrivals:
    def test_midslot_joiner_advances_from_own_start_time(self):
        """tiny config plays 1 chunk/s: the arithmetic is checkable by hand."""
        system = build_system()
        system.run(20.0)
        t = system.now
        joiner = system.add_watching_peer(
            video_id=0, upload_multiple=1.0, start_time=t + 3.25
        )
        assert system.peers[joiner.peer_id] is joiner
        due, missed = system._advance_playback(t + 10.0)
        # 6.75 s of playback at 1 chunk/s → 6 chunks due, all missed
        # (empty buffer); the joiner's session moved to position 6.
        assert joiner.session.position == 6
        assert joiner.session.missed == {0, 1, 2, 3, 4, 5}
        assert joiner.session._last_advance == t + 10.0

    def test_midslot_joiner_with_prefilled_buffer_plays_held_chunks(self):
        system = build_system()
        system.run(20.0)
        t = system.now
        joiner = system.add_watching_peer(
            video_id=0, upload_multiple=1.0, start_time=t + 4.0
        )
        joiner.buffer.add_batch([0, 1, 2])
        system._advance_playback(t + 10.0)
        # 6 s → 6 chunks due; 0-2 held (played), 3-5 missed.
        assert joiner.session.position == 6
        assert joiner.session.played == 3
        assert joiner.session.missed == {3, 4, 5}

    def test_future_sessions_are_untouched(self):
        system = build_system()
        system.run(10.0)
        t = system.now
        future = system.add_watching_peer(
            video_id=0, upload_multiple=1.0, start_time=t + 25.0
        )
        before = future.session._last_advance
        due, missed = system._advance_playback(t + 10.0)
        assert future.session.position == future.session.start_position
        assert future.session.played == 0
        assert future.session.missed == set()
        # Not even the advance stamp moves: the reference loop skips
        # sessions whose start_time >= to_time without touching them.
        assert future.session._last_advance == before

    def test_batched_matches_reference_with_mixed_arrivals(self):
        """Steady watchers + two mid-slot joiners: byte-equal outcomes."""
        fast = build_system(seed=9)
        slow = build_system(seed=9)
        fast.run(20.0)
        slow.run(20.0)
        for system in (fast, slow):
            t = system.now
            a = system.add_watching_peer(
                video_id=0, upload_multiple=1.0, start_time=t + 2.5
            )
            a.buffer.add_batch([0, 1])
            system.add_watching_peer(
                video_id=1, upload_multiple=1.0, start_time=t + 7.9
            )
            system.add_watching_peer(  # future: skipped this slot
                video_id=0, upload_multiple=1.0, start_time=t + 12.0
            )
        t = fast.now
        pair_fast = fast._advance_playback(t + 10.0)
        pair_slow = slow._advance_playback_reference(t + 10.0)
        assert pair_fast == pair_slow
        for pid, pf in fast.peers.items():
            ps = slow.peers[pid]
            if pf.session is None:
                continue
            assert pf.session.position == ps.session.position, pid
            assert pf.session.played == ps.session.played, pid
            assert pf.session.missed == ps.session.missed, pid
            assert pf.session._last_advance == ps.session._last_advance, pid
        fast.store.check_consistency(fast.peers)

    def test_startup_delayed_churn_arrivals_account_from_start(self):
        """Churn admissions (startup delay) across several slots."""
        fast = P2PSystem(SystemConfig.tiny(seed=11, arrival_rate_per_s=1.0))
        slow = P2PSystem(SystemConfig.tiny(seed=11, arrival_rate_per_s=1.0))
        fast.populate_static(8)
        slow.populate_static(8)
        slow._advance_playback = slow._advance_playback_reference
        for _ in range(6):
            mf = fast.run_slot(churn=True, remove_finished=True)
            ms = slow.run_slot(churn=True, remove_finished=True)
            assert (mf.chunks_due, mf.chunks_missed) == (
                ms.chunks_due,
                ms.chunks_missed,
            )
        assert fast.arrivals > 0

    def test_time_going_backwards_raises_before_mutation(self):
        system = build_system()
        system.run(20.0)
        t = system.now
        system._advance_playback(t + 5.0)
        positions = {
            pid: p.session.position
            for pid, p in system.peers.items()
            if p.session is not None
        }
        with pytest.raises(ValueError, match="time went backwards"):
            system._advance_playback(t + 2.0)
        after = {
            pid: p.session.position
            for pid, p in system.peers.items()
            if p.session is not None
        }
        assert positions == after  # batched path validates up front
