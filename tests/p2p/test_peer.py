"""Tests for the peer abstraction."""

from __future__ import annotations

import pytest

from repro.p2p.peer import Peer
from repro.vod.buffer import ChunkBuffer
from repro.vod.playback import PlaybackSession
from repro.vod.valuation import DeadlineValuation
from repro.vod.video import Video


def make_video(n_chunks=60):
    # 1 chunk per second.
    return Video(video_id=7, n_chunks=n_chunks, chunk_size_bytes=1000, bitrate_bps=8000)


def make_watcher(start_time=0.0, position=0, prefill=()):
    video = make_video()
    buffer = ChunkBuffer(video)
    for i in prefill:
        buffer.add(i)
    session = PlaybackSession(video, buffer, start_time=start_time, start_position=position)
    peer = Peer(
        peer_id=1,
        isp=0,
        video=video,
        upload_capacity_chunks=10,
        buffer=buffer,
        session=session,
    )
    return peer


def make_seed():
    video = make_video()
    buffer = ChunkBuffer(video)
    buffer.fill_range(0, video.n_chunks)
    return Peer(
        peer_id=2,
        isp=1,
        video=video,
        upload_capacity_chunks=80,
        buffer=buffer,
        is_seed=True,
    )


class TestConstruction:
    def test_seed_with_session_rejected(self):
        video = make_video()
        buffer = ChunkBuffer(video)
        session = PlaybackSession(video, buffer, start_time=0.0)
        with pytest.raises(ValueError):
            Peer(1, 0, video, 10, buffer, session=session, is_seed=True)

    def test_negative_capacity_rejected(self):
        video = make_video()
        with pytest.raises(ValueError):
            Peer(1, 0, video, -1, ChunkBuffer(video))


class TestContentQueries:
    def test_holds_chunk_checks_video(self):
        peer = make_watcher(prefill=[3])
        assert peer.holds_chunk(7, 3)
        assert not peer.holds_chunk(8, 3)  # different video
        assert not peer.holds_chunk(7, 4)

    def test_seed_holds_everything(self):
        seed = make_seed()
        assert all(seed.holds_chunk(7, i) for i in range(60))
        assert not seed.watching
        assert seed.playback_position() is None

    def test_watching_lifecycle(self):
        peer = make_watcher()
        assert peer.watching
        peer.session.advance_to(60.0)
        assert not peer.watching


class TestRequests:
    def test_seed_never_requests(self):
        assert make_seed().build_requests(0.0, 10, DeadlineValuation()) == []

    def test_window_excludes_held_and_missed(self):
        peer = make_watcher(prefill=[0, 2])
        peer.session.advance_to(0.0)
        requests = peer.build_requests(0.0, 5, DeadlineValuation())
        indices = [i for i, _ in requests]
        assert indices == [1, 3, 4]

    def test_urgent_chunks_valued_higher(self):
        peer = make_watcher()
        requests = peer.build_requests(0.0, 10, DeadlineValuation())
        values = [v for _, v in requests]
        assert values == sorted(values, reverse=True)

    def test_lookahead_raises_values(self):
        peer = make_watcher()
        plain = dict(peer.build_requests(0.0, 10, DeadlineValuation()))
        boosted = dict(peer.build_requests(0.0, 10, DeadlineValuation(), lookahead=2.5))
        for index in plain:
            assert boosted[index] >= plain[index]

    def test_finished_session_requests_nothing(self):
        peer = make_watcher(prefill=range(60))
        peer.session.advance_to(60.0)
        assert peer.build_requests(60.0, 10, DeadlineValuation()) == []

    def test_prefetch_before_playback_start(self):
        """A peer in its startup delay still requests (positive deadlines)."""
        peer = make_watcher(start_time=10.0)
        requests = peer.build_requests(0.0, 5, DeadlineValuation())
        assert len(requests) == 5
        valuation = DeadlineValuation()
        # First chunk is due at t=10, i.e. 10 s away.
        assert requests[0][1] == pytest.approx(valuation.value(10.0))


class TestTransfers:
    def test_receive_chunk_counts_downloads(self):
        peer = make_watcher()
        assert peer.receive_chunk(5)
        assert not peer.receive_chunk(5)  # duplicate
        assert peer.chunks_downloaded == 1
        assert peer.holds_chunk(7, 5)

    def test_record_upload(self):
        peer = make_watcher()
        peer.record_upload()
        peer.record_upload(3)
        assert peer.chunks_uploaded == 4
