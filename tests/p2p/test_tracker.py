"""Tests for the tracker server."""

from __future__ import annotations

import numpy as np
import pytest

from repro.p2p.peer import Peer
from repro.p2p.tracker import Tracker
from repro.vod.buffer import ChunkBuffer
from repro.vod.playback import PlaybackSession
from repro.vod.video import Video


def make_peer(peer_id, video_id=0, position=0, is_seed=False):
    video = Video(video_id=video_id, n_chunks=100, chunk_size_bytes=1000, bitrate_bps=8000)
    buffer = ChunkBuffer(video)
    session = None
    if not is_seed:
        session = PlaybackSession(video, buffer, start_time=0.0, start_position=position)
    else:
        buffer.fill_range(0, 100)
    return Peer(peer_id, 0, video, 10, buffer, session=session, is_seed=is_seed)


class TestRegistry:
    def test_register_unregister(self):
        tracker = Tracker()
        peer = make_peer(1)
        tracker.register(peer)
        assert 1 in tracker and len(tracker) == 1
        tracker.unregister(1)
        assert 1 not in tracker

    def test_duplicate_registration_rejected(self):
        tracker = Tracker()
        peer = make_peer(1)
        tracker.register(peer)
        with pytest.raises(ValueError):
            tracker.register(peer)

    def test_unregister_unknown_raises(self):
        with pytest.raises(KeyError):
            Tracker().unregister(5)

    def test_peers_watching_by_video(self):
        tracker = Tracker()
        tracker.register(make_peer(1, video_id=0))
        tracker.register(make_peer(2, video_id=0))
        tracker.register(make_peer(3, video_id=1))
        assert tracker.peers_watching(0) == {1, 2}
        assert tracker.peers_watching(1) == {3}
        assert tracker.peers_watching(9) == set()

    def test_online_peers(self):
        tracker = Tracker()
        tracker.register(make_peer(1))
        tracker.register(make_peer(2, video_id=1))
        assert sorted(tracker.online_peers()) == [1, 2]


class TestBootstrap:
    def test_candidates_same_video_only(self):
        tracker = Tracker()
        tracker.register(make_peer(1, video_id=0, position=50))
        tracker.register(make_peer(2, video_id=1, position=50))
        joiner = make_peer(10, video_id=0, position=50)
        candidates = tracker.bootstrap_candidates(joiner)
        assert candidates == [1]

    def test_ranked_by_playback_proximity(self):
        tracker = Tracker()
        tracker.register(make_peer(1, position=10))
        tracker.register(make_peer(2, position=48))
        tracker.register(make_peer(3, position=90))
        joiner = make_peer(10, position=50)
        candidates = tracker.bootstrap_candidates(joiner)
        assert candidates[0] == 2

    def test_seed_rank_first_guarantees_seeds(self):
        tracker = Tracker(seed_rank="first")
        tracker.register(make_peer(99, is_seed=True))
        for pid in range(1, 6):
            tracker.register(make_peer(pid, position=pid * 10))
        joiner = make_peer(10, position=55)
        assert tracker.bootstrap_candidates(joiner)[0] == 99

    def test_seed_rank_random_varies(self):
        ranks = set()
        for seed in range(15):
            tracker = Tracker(
                rng=np.random.default_rng(seed), seed_rank="random"
            )
            tracker.register(make_peer(99, is_seed=True))
            for pid in range(1, 8):
                tracker.register(make_peer(pid, position=pid * 10))
            joiner = make_peer(10, position=40)
            ranks.add(tracker.bootstrap_candidates(joiner).index(99))
        assert len(ranks) > 1

    def test_joiner_not_own_candidate(self):
        tracker = Tracker()
        peer = make_peer(1)
        tracker.register(peer)
        assert 1 not in tracker.bootstrap_candidates(peer)
