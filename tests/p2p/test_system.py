"""Tests for the whole-system slot loop."""

from __future__ import annotations

import pytest

from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem


@pytest.fixture
def tiny_system():
    return P2PSystem(SystemConfig.tiny(seed=5))


class TestAdmission:
    def test_seeds_created_at_start(self, tiny_system):
        assert tiny_system.n_seeds() == 2 * 3  # 2 ISPs × 3 videos × 1

    def test_seed_isps_respected(self, tiny_system):
        """Every ISP must hold one seed of every video (regression: seeds
        used to be auto-assigned, landing all seeds of a video in one ISP)."""
        pairs = {
            (p.isp, p.video.video_id)
            for p in tiny_system.peers.values()
            if p.is_seed
        }
        assert pairs == {(i, v) for i in range(2) for v in range(3)}

    def test_watchers_balanced_across_isps(self, tiny_system):
        tiny_system.populate_static(20)
        sizes = tiny_system.topology.sizes()
        assert abs(sizes[0] - sizes[1]) <= 1

    def test_add_watching_peer_wires_everything(self, tiny_system):
        peer = tiny_system.add_watching_peer(video_id=0, upload_multiple=2.0)
        assert peer.peer_id in tiny_system.peers
        assert peer.peer_id in tiny_system.tracker
        assert peer.peer_id in tiny_system.overlay
        assert peer.peer_id in tiny_system.topology
        assert tiny_system.overlay.degree(peer.peer_id) > 0  # found neighbors

    def test_remove_peer_cleans_up(self, tiny_system):
        peer = tiny_system.add_watching_peer(video_id=0, upload_multiple=2.0)
        pid = peer.peer_id
        tiny_system.costs.cost(pid, 1)
        tiny_system.remove_peer(pid)
        assert pid not in tiny_system.peers
        assert pid not in tiny_system.tracker
        assert pid not in tiny_system.overlay
        assert pid not in tiny_system.topology
        assert all(pid not in key for key in tiny_system.costs._cache)

    def test_remove_unknown_raises(self, tiny_system):
        with pytest.raises(KeyError):
            tiny_system.remove_peer(424242)


class TestProblemConstruction:
    def test_candidates_are_neighbors_with_chunk(self, tiny_system):
        tiny_system.populate_static(15)
        problem, owner = tiny_system.build_problem(0.0)
        for r in range(problem.n_requests):
            request = problem.request(r)
            downstream = tiny_system.peers[request.peer]
            neighbors = tiny_system.overlay.neighbors(request.peer)
            video_id, index = request.chunk
            assert video_id == downstream.video.video_id
            for u in problem.candidates_of(r):
                assert int(u) in neighbors
                assert tiny_system.peers[int(u)].holds_chunk(video_id, index)

    def test_capacity_override(self, tiny_system):
        tiny_system.populate_static(5)
        problem, _ = tiny_system.build_problem(
            0.0, capacities={pid: 1 for pid in tiny_system.peers}
        )
        assert all(problem.capacity_of(u) == 1 for u in problem.uploaders())

    def test_round_budget_splits_exactly(self):
        budgets = [P2PSystem._round_budget(10, r, 4) for r in range(4)]
        assert sum(budgets) == 10
        assert max(budgets) - min(budgets) <= 1

    def test_request_owner_map(self, tiny_system):
        tiny_system.populate_static(10)
        problem, owner = tiny_system.build_problem(0.0)
        for r, pid in owner.items():
            assert problem.request(r).peer == pid


class TestSlotLoop:
    def test_run_advances_clock_and_records(self, tiny_system):
        tiny_system.populate_static(10)
        collector = tiny_system.run(30.0)
        assert tiny_system.now == pytest.approx(30.0)
        assert len(collector.slots) == 3
        times = [s.time for s in collector.slots]
        assert times == [0.0, 10.0, 20.0]

    def test_transfers_update_buffers(self, tiny_system):
        tiny_system.populate_static(10)
        before = {p.peer_id: len(p.buffer) for p in tiny_system.peers.values()}
        metrics = tiny_system.run_slot()
        gained = sum(
            len(p.buffer) - before[p.peer_id]
            for p in tiny_system.peers.values()
            if p.peer_id in before
        )
        assert gained == metrics.n_served
        assert metrics.inter_isp_chunks + metrics.intra_isp_chunks == metrics.n_served

    def test_served_never_exceeds_requests(self, tiny_system):
        tiny_system.populate_static(12)
        metrics = tiny_system.run_slot()
        assert metrics.n_served <= metrics.n_requests

    def test_upload_counters_consistent(self, tiny_system):
        tiny_system.populate_static(10)
        tiny_system.run(20.0)
        uploaded = sum(p.chunks_uploaded for p in tiny_system.peers.values())
        downloaded = sum(p.chunks_downloaded for p in tiny_system.peers.values())
        assert uploaded == downloaded

    def test_static_run_keeps_population(self, tiny_system):
        tiny_system.populate_static(10)
        tiny_system.run(40.0)
        assert len(tiny_system.peers) == 10 + tiny_system.n_seeds()


class TestChurn:
    def test_arrivals_grow_population(self):
        config = SystemConfig.tiny(seed=2, arrival_rate_per_s=1.0)
        system = P2PSystem(config)
        system.run(40.0, churn=True)
        assert system.arrivals > 10
        assert len(system.peers) > system.n_seeds()

    def test_finished_peers_leave_in_churn_mode(self):
        config = SystemConfig.tiny(seed=3, arrival_rate_per_s=0.5)
        system = P2PSystem(config)
        # Video is 40 chunks = 40 s; run long enough for early arrivals to finish.
        system.run(120.0, churn=True)
        assert system.departures > 0

    def test_early_departures_happen(self):
        config = SystemConfig.tiny(
            seed=4, arrival_rate_per_s=1.0, early_departure_prob=1.0
        )
        system = P2PSystem(config)
        system.run(60.0, churn=True)
        assert system.departures > 0

    def test_same_seed_same_workload(self):
        """The comparison methodology: arrivals identical across schedulers."""
        a = P2PSystem(SystemConfig.tiny(seed=7, scheduler="auction"))
        b = P2PSystem(SystemConfig.tiny(seed=7, scheduler="locality"))
        a.run(40.0, churn=True)
        b.run(40.0, churn=True)
        assert a.arrivals == b.arrivals
        videos_a = sorted(p.video.video_id for p in a.peers.values())
        videos_b = sorted(p.video.video_id for p in b.peers.values())
        assert videos_a == videos_b

    def test_deterministic_metrics_for_seed(self):
        def run():
            system = P2PSystem(SystemConfig.tiny(seed=11))
            system.populate_static(8)
            return [s.welfare for s in system.run(30.0).slots]

        assert run() == run()


class TestSubRounds:
    def test_more_rounds_never_breaks_run(self):
        config = SystemConfig.tiny(seed=6, bid_rounds_per_slot=5)
        system = P2PSystem(config)
        system.populate_static(8)
        metrics = system.run_slot()
        assert metrics.n_requests >= 0

    def test_single_round_pure_model(self):
        config = SystemConfig.tiny(seed=6, bid_rounds_per_slot=1)
        system = P2PSystem(config)
        system.populate_static(8)
        metrics = system.run_slot()
        assert metrics.time == 0.0
