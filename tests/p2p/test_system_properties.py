"""Property-based tests for the system slot loop invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 1000),
    n_peers=st.integers(2, 20),
    scheduler=st.sampled_from(["auction", "locality", "greedy"]),
    rounds=st.integers(1, 3),
)
def test_slot_invariants_hold_for_any_config(seed, n_peers, scheduler, rounds):
    """Conservation, feasibility and bounds hold for arbitrary small runs."""
    config = SystemConfig.tiny(
        seed=seed, scheduler=scheduler, bid_rounds_per_slot=rounds
    )
    system = P2PSystem(config)
    system.populate_static(n_peers)
    collector = system.run(20.0)

    for slot in collector.slots:
        assert slot.n_served <= slot.n_requests
        assert slot.inter_isp_chunks + slot.intra_isp_chunks == slot.n_served
        assert 0.0 <= slot.miss_rate <= 1.0
        assert slot.chunks_missed <= slot.chunks_due

    uploaded = sum(p.chunks_uploaded for p in system.peers.values())
    downloaded = sum(p.chunks_downloaded for p in system.peers.values())
    assert uploaded == downloaded == system.traffic_matrix.total()


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 1000), rate=st.floats(0.2, 3.0))
def test_churn_population_accounting(seed, rate):
    config = SystemConfig.tiny(
        seed=seed, arrival_rate_per_s=rate, early_departure_prob=0.5
    )
    system = P2PSystem(config)
    system.run(40.0, churn=True)
    assert len(system.peers) == system.n_seeds() + system.arrivals - system.departures
    # Nobody departs before arriving; the topology matches the peer map.
    assert system.topology.all_peers() == set(system.peers)
    assert set(system.tracker.online_peers()) == set(system.peers)
