"""Batched churn bookkeeping ≡ the per-peer reference paths.

The slot boundary's churn handling is columnar since the event-driven
auction PR: departures come from one mask over the store's departure /
playback columns (``PeerStateStore.departure_scan``) and are removed via
``remove_batch``; arrival bursts register with ``admit_batch``.  These
tests pin the batched paths against the per-peer reference
(``_process_departures_reference``, sequential ``store.admit``) on whole
churny trajectories — peer state, metrics and store invariants must all
come out identical.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np
import pytest

from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "properties")
)
from support import assert_same_peer_state  # noqa: E402


def churny_config(seed: int, **overrides) -> SystemConfig:
    return SystemConfig.tiny(
        seed=seed,
        arrival_rate_per_s=1.0,
        early_departure_prob=0.5,
        **overrides,
    )


def reference_churn_system(config: SystemConfig) -> P2PSystem:
    """A system forced onto the per-peer churn bookkeeping paths."""
    system = P2PSystem(config)
    system._process_departures = (
        lambda t, remove_finished: P2PSystem._process_departures_reference(
            system, t, remove_finished
        )
    )
    store = system.store
    real_admit = store.admit
    store.admit_batch = lambda peers: [real_admit(p) for p in peers]

    def full_dict_refill():
        # The historical refill pass: walk the whole peers dict, skip
        # seeds and non-deficient peers at visit time (the overlay's
        # deficient set is live — earlier bootstraps in the same pass
        # can refill later peers, whose tracker RNG draw must then be
        # skipped; the columnar pass must reproduce that exactly).
        deficient = system.overlay.deficient_nodes()
        if not (deficient - system.store.seed_ids):
            return
        for peer in system.peers.values():
            if peer.is_seed or peer.peer_id not in deficient:
                continue
            candidates = [
                pid
                for pid in system.tracker.bootstrap_candidates(peer)
                if pid not in system.overlay.neighbors(peer.peer_id)
            ]
            system.overlay.bootstrap(peer.peer_id, candidates)

    system._refill_neighbors = full_dict_refill
    return system


class TestDepartureScan:
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_scan_matches_reference_loop(self, seed):
        system = P2PSystem(churny_config(seed))
        system.populate_static(10)
        for _ in range(6):
            t = system.now
            expected = []
            for peer in system.peers.values():
                if peer.is_seed:
                    continue
                if peer.departure_time is not None and peer.departure_time <= t:
                    expected.append(peer.peer_id)
                elif peer.session is not None and peer.session.finished:
                    expected.append(peer.peer_id)
            assert system.store.departure_scan(t, True) == expected
            system.run_slot(churn=True, remove_finished=True)

    def test_scan_without_finished_removal(self):
        system = P2PSystem(churny_config(1))
        system.populate_static(8)
        system.run(30.0, churn=True, remove_finished=False)
        t = system.now
        expected = [
            p.peer_id
            for p in system.peers.values()
            if not p.is_seed
            and p.departure_time is not None
            and p.departure_time <= t
        ]
        assert system.store.departure_scan(t, False) == expected


class TestTrajectoryEquivalence:
    @pytest.mark.parametrize("seed", [2, 7, 11])
    def test_batched_equals_reference_run(self, seed):
        config = churny_config(seed)
        a = P2PSystem(config)
        a.populate_static(12)
        b = reference_churn_system(config)
        b.populate_static(12)
        ca = a.run(60.0, churn=True)
        cb = b.run(60.0, churn=True)
        assert ca.slots == cb.slots  # SlotMetrics are frozen dataclasses
        assert a.departures == b.departures
        assert a.arrivals == b.arrivals
        assert_same_peer_state(a, b)
        a.store.check_consistency(a.peers, tracker=a.tracker)
        b.store.check_consistency(b.peers, tracker=b.tracker)


class TestBatchStoreOps:
    def test_admit_batch_consistency(self):
        system = P2PSystem(SystemConfig.tiny(seed=4))
        system.populate_static(6)
        batch = [
            system.add_watching_peer(
                video_id=0, upload_multiple=2.0, defer_store=True
            )
            for _ in range(4)
        ]
        before = system.store.membership_version
        system.store.admit_batch(batch)
        assert system.store.membership_version == before + len(batch)
        system.store.check_consistency(system.peers, tracker=system.tracker)

    def test_admit_batch_empty_is_noop(self):
        system = P2PSystem(SystemConfig.tiny(seed=4))
        before = system.store.membership_version
        system.store.admit_batch([])
        assert system.store.membership_version == before

    def test_remove_batch_consistency(self):
        system = P2PSystem(SystemConfig.tiny(seed=5))
        system.populate_static(9)
        victims = [p for p in system.peers.values() if not p.is_seed][:4]
        for peer in victims:
            del system.peers[peer.peer_id]
        system.store.remove_batch(victims)
        for peer in victims:
            system.tracker.unregister(peer.peer_id)
            system.overlay.remove_node(peer.peer_id)
            system.topology.remove_peer(peer.peer_id)
            system.costs.forget_peer(peer.peer_id)
        system.store.check_consistency(system.peers, tracker=system.tracker)
        # Store columns shrank coherently.
        ids, caps = system.store.capacity_columns()
        assert len(ids) == len(system.peers)
        assert np.all(system.store.isp_table()[[p.peer_id for p in victims]] == -1)

    def test_remove_batch_unknown_peer_raises(self):
        system = P2PSystem(SystemConfig.tiny(seed=6))
        system.populate_static(4)
        peer = next(p for p in system.peers.values() if not p.is_seed)
        system.remove_peer(peer.peer_id)
        with pytest.raises(KeyError):
            system.store.remove_batch([peer])
