"""Tests for seed placement."""

from __future__ import annotations

import itertools

from repro.p2p.config import SystemConfig
from repro.p2p.seeding import create_seeds
from repro.vod.video import VideoCatalog


def build(config):
    catalog = VideoCatalog.paper_default(
        n_videos=config.n_videos,
        size_bytes=config.video_size_bytes,
        chunk_size_bytes=config.chunk_size_bytes,
        bitrate_bps=config.bitrate_bps,
    )
    return catalog, create_seeds(config, catalog, itertools.count(1))


class TestSeedPlacement:
    def test_count_is_isps_times_videos_times_rate(self):
        config = SystemConfig.tiny()  # 2 ISPs × 3 videos × 1
        _, seeds = build(config)
        assert len(seeds) == 2 * 3 * 1

    def test_paper_rate_two_per_isp_per_video(self):
        config = SystemConfig.tiny(seeds_per_isp_per_video=2)
        _, seeds = build(config)
        assert len(seeds) == 2 * 3 * 2

    def test_every_isp_video_pair_covered(self):
        config = SystemConfig.tiny()
        _, seeds = build(config)
        pairs = {(s.isp, s.video.video_id) for s in seeds}
        assert pairs == {(i, v) for i in range(2) for v in range(3)}

    def test_seeds_cache_complete_video(self):
        config = SystemConfig.tiny()
        catalog, seeds = build(config)
        for seed in seeds:
            assert len(seed.buffer) == seed.video.n_chunks
            assert seed.buffer.completion() == 1.0

    def test_seed_capacity_uses_multiple(self):
        config = SystemConfig.tiny()
        _, seeds = build(config)
        expected = config.peer_capacity_chunks(config.seed_upload_multiple)
        assert all(s.upload_capacity_chunks == expected for s in seeds)

    def test_unique_ids(self):
        config = SystemConfig.tiny()
        _, seeds = build(config)
        ids = [s.peer_id for s in seeds]
        assert len(set(ids)) == len(ids)

    def test_all_marked_seed_without_sessions(self):
        config = SystemConfig.tiny()
        _, seeds = build(config)
        assert all(s.is_seed and s.session is None for s in seeds)
