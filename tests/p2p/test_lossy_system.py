"""System-level tests: lossy link conditions + the cross-slot retry pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.linkmodel import LinkParams
from repro.p2p.config import SystemConfig
from repro.p2p.retry import _triple_key
from repro.p2p.system import P2PSystem


def _lossy_everywhere(system, loss=1.0, **kwargs):
    """Degrade every pair (intra included) — tiny systems localize fully,
    so inter-only degradation would never see a failure."""
    for isp in range(system.config.n_isps):
        system.set_link_conditions(LinkParams(loss_rate=loss, **kwargs), isp_a=isp)


def _request_keys(problem):
    pairs = problem.chunk_pair_array()
    return _triple_key(
        problem.request_peer_array(), pairs[:, 0], pairs[:, 1]
    )


@pytest.fixture
def system():
    s = P2PSystem(SystemConfig.tiny(seed=5))
    s.populate_static(16)
    return s


class TestLossySlots:
    def test_total_loss_fails_every_transfer(self, system):
        _lossy_everywhere(system, loss=1.0)
        m = system.run_slot()
        assert m.n_served > 0
        assert m.transfers_failed == m.n_served
        assert m.link_regime == "custom"
        assert len(system.retry_queue) == m.transfers_failed
        # Nothing landed: no watcher has a first delivery.
        assert system.startup_delay_stats() == (0.0, 0)

    def test_failure_accounting_balances(self, system):
        _lossy_everywhere(system, loss=0.3)
        for _ in range(8):
            system.run_slot()
        totals = system.collector.totals()
        failed = totals["transfers_failed_total"]
        assert failed > 0
        evicted = sum(m.retry_evicted for m in system.collector.slots)
        # Every failed transfer leaves the pipeline exactly once —
        # delivered on retry, surrendered at TTL, evicted — or is still
        # pending at the end.
        assert failed == (
            totals["retry_succeeded_total"]
            + totals["retry_surrendered_total"]
            + evicted
            + len(system.retry_queue)
        )

    def test_retries_recover_most_of_the_loss(self, system):
        _lossy_everywhere(system, loss=0.3)
        for _ in range(8):
            system.run_slot()
        totals = system.collector.totals()
        one_shot_rate = 1.0 - 0.3
        recovered = totals["retry_succeeded_total"] / totals["transfers_failed_total"]
        assert recovered > one_shot_rate

    def test_lossy_run_is_deterministic(self):
        def trajectory():
            s = P2PSystem(SystemConfig.tiny(seed=5))
            s.populate_static(16)
            _lossy_everywhere(s, loss=0.3, delay_ms=50.0, jitter_ms=10.0)
            return [
                (m.welfare, m.n_served, m.transfers_failed, m.retry_succeeded,
                 m.link_delay_ms)
                for m in (s.run_slot() for _ in range(5))
            ]

        assert trajectory() == trajectory()

    def test_degrade_then_restore_is_byte_identical_to_ideal(self):
        """A table degraded and restored before any slot must not perturb
        the trajectory — the ideal table is never evaluated, so no RNG
        stream moves (the archived-results invariant)."""
        a = P2PSystem(SystemConfig.tiny(seed=7))
        a.populate_static(16)
        b = P2PSystem(SystemConfig.tiny(seed=7))
        b.populate_static(16)
        b.apply_link_preset("loss30-delay50")
        b.reset_link_conditions()
        for _ in range(3):
            ma, mb = a.run_slot(), b.run_slot()
            assert (ma.welfare, ma.n_served, ma.chunks_missed) == (
                mb.welfare, mb.n_served, mb.chunks_missed
            )
            assert mb.transfers_failed == 0 and mb.link_regime == "ideal"

    def test_delay_only_regime_fails_nothing_but_reports_latency(self, system):
        _lossy_everywhere(system, loss=0.0, delay_ms=10.0)
        m = system.run_slot()
        assert m.transfers_failed == 0
        assert m.n_served > 0
        assert m.link_delay_ms == pytest.approx(10.0 * m.n_served)
        assert m.mean_link_delay_ms == pytest.approx(10.0)


class TestRetryInteractions:
    def _park_first_request(self, system, uploader_id):
        """Push the first assembleable request into the retry queue."""
        problem, _ = system.build_problem(system.now)
        assert problem.n_requests > 0
        down = int(problem.request_peer_array()[0])
        video, chunk = (int(v) for v in problem.chunk_pair_array()[0])
        system.retry_queue.push_failed(
            np.array([down]), np.array([uploader_id]),
            np.array([video]), np.array([chunk]), system.slot_index,
        )
        return problem, down, video, chunk

    def _seed_holding(self, system, video, chunk):
        for peer in system.peers.values():
            if peer.is_seed and peer.video.video_id == video and peer.buffer.holds(chunk):
                return peer.peer_id
        raise AssertionError("no seed holds the chunk")

    def test_pending_edge_suppressed_from_build_problem(self, system):
        problem, down, video, chunk = self._park_first_request(system, uploader_id=0)
        suppressed, _ = system.build_problem(system.now)
        assert suppressed.n_requests == problem.n_requests - 1
        key = _triple_key(
            np.array([down]), np.array([video]), np.array([chunk])
        )
        assert not np.isin(key, _request_keys(suppressed)).any()

    def test_ttl_surrender_reexposes_request(self, system):
        up = self._seed_holding(system, 0, 0)
        problem, down, video, chunk = self._park_first_request(system, uploader_id=up)
        system.slot_index += system.retry_queue.ttl_slots
        counters = system._process_retries(system.now)
        assert counters["surrendered"] == 1
        assert len(system.retry_queue) == 0
        reexposed, _ = system.build_problem(system.now)
        assert reexposed.n_requests == problem.n_requests
        key = _triple_key(
            np.array([down]), np.array([video]), np.array([chunk])
        )
        assert np.isin(key, _request_keys(reexposed)).any()

    def test_departed_uploader_evicts_edge(self, system):
        problem, down, video, chunk = self._park_first_request(
            system, uploader_id=self._seed_holding(system, 0, 0)
        )
        # Re-point the parked edge at a removable watcher uploader: any
        # online peer works, eviction only looks at liveness.
        up = next(
            p.peer_id for p in system.peers.values()
            if not p.is_seed and p.peer_id != down
        )
        system.retry_queue._up[:] = up
        system.remove_peer(up)
        counters = system._process_retries(system.now)
        assert counters["evicted"] == 1
        assert counters["attempts"] == 0
        assert len(system.retry_queue) == 0

    def test_departed_downstream_evicts_edge(self, system):
        problem, down, video, chunk = self._park_first_request(
            system, uploader_id=self._seed_holding(system, 0, 0)
        )
        system.remove_peer(down)
        counters = system._process_retries(system.now)
        assert counters["evicted"] == 1
        assert len(system.retry_queue) == 0

    def test_due_retry_delivers_through_store(self, system):
        problem, down, video, chunk = self._park_first_request(system, uploader_id=0)
        up = self._seed_holding(system, video, chunk)
        system.retry_queue._up[:] = up
        peer = system.peers[down]
        assert not peer.buffer.holds(chunk)
        before = peer.chunks_downloaded
        system.slot_index += 1  # first backoff
        counters = system._process_retries(system.now)
        assert counters["attempts"] == 1
        assert counters["succeeded"] == 1
        assert peer.buffer.holds(chunk)
        assert peer.chunks_downloaded == before + 1
        assert peer.first_delivery_time == system.now
        mean, n = system.startup_delay_stats()
        assert n == 1

    def test_retry_against_live_links_requeues_on_failure(self, system):
        problem, down, video, chunk = self._park_first_request(system, uploader_id=0)
        up = self._seed_holding(system, video, chunk)
        system.retry_queue._up[:] = up
        _lossy_everywhere(system, loss=1.0)
        system.slot_index += 1
        counters = system._process_retries(system.now)
        assert counters["attempts"] == 1
        assert counters["succeeded"] == 0
        assert len(system.retry_queue) == 1
        assert system.retry_queue._attempts.tolist() == [2]
