"""Tests for the churn model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.p2p.churn import ChurnModel
from repro.vod.popularity import ZipfMandelbrot


def make_model(rate=1.0, departure=0.0, seed=0):
    return ChurnModel(
        np.random.default_rng(seed),
        ZipfMandelbrot(n=10),
        arrival_rate_per_s=rate,
        upload_range=(1.0, 4.0),
        early_departure_prob=departure,
    )


class TestArrivals:
    def test_interarrival_mean_matches_rate(self):
        model = make_model(rate=2.0)
        gaps = [model.next_interarrival() for _ in range(5000)]
        assert np.mean(gaps) == pytest.approx(0.5, rel=0.1)

    def test_plan_fields(self):
        model = make_model()
        plan = model.plan_arrival(5.0, lambda vid: 100.0)
        assert plan.time == 5.0
        assert 0 <= plan.video_id < 10
        assert 1.0 <= plan.upload_multiple <= 4.0
        assert plan.departure_time is None

    def test_arrivals_until_window(self):
        model = make_model(rate=5.0)
        plans = model.arrivals_until(0.0, 10.0, lambda vid: 100.0)
        assert all(0.0 < p.time < 10.0 for p in plans)
        assert 20 < len(plans) < 90  # ~50 expected

    def test_video_choice_skewed_to_popular(self):
        model = make_model(seed=3)
        plans = model.arrivals_until(0.0, 2000.0, lambda vid: 100.0)
        videos = [p.video_id for p in plans]
        assert videos.count(0) > videos.count(9)


class TestDepartures:
    def test_no_departures_when_disabled(self):
        model = make_model(departure=0.0)
        plans = model.arrivals_until(0.0, 200.0, lambda vid: 100.0)
        assert all(p.departure_time is None for p in plans)

    def test_departure_probability_respected(self):
        model = make_model(departure=0.6, seed=1)
        plans = model.arrivals_until(0.0, 3000.0, lambda vid: 100.0)
        early = sum(1 for p in plans if p.departure_time is not None)
        assert early / len(plans) == pytest.approx(0.6, abs=0.05)

    def test_departure_within_viewing_interval(self):
        model = make_model(departure=1.0, seed=2)
        plan = model.plan_arrival(10.0, lambda vid: 50.0)
        assert plan.departure_time is not None
        assert 10.0 <= plan.departure_time <= 60.0


class TestValidation:
    def test_bad_rate(self):
        with pytest.raises(ValueError):
            make_model(rate=0.0)

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            make_model(departure=2.0)
