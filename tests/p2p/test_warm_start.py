"""Warm-started prices through the slot loop (config-gated re-bids).

``warm_start_prices`` feeds each bid round's final λ into the next
round's auction; ``warm_start_across_slots`` carries λ over the slot
boundary.  Both default off — every archived experiment regenerates
cold — so these tests pin the plumbing: flag validation, tuple/dict
price-form equivalence at the solver, carry semantics, and graceful
no-op for schedulers without warm-start support.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.auction import AuctionSolver
from repro.core.problem import random_problem
from repro.core.scheduler import AuctionScheduler
from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem


class TestConfigFlags:
    def test_across_slots_requires_warm_start(self):
        with pytest.raises(ValueError, match="warm_start_across_slots"):
            SystemConfig.tiny(warm_start_across_slots=True).validate()

    def test_flags_accepted(self):
        config = SystemConfig.tiny(
            warm_start_prices=True, warm_start_across_slots=True
        )
        config.validate()
        assert config.warm_start_prices

    def test_default_off(self):
        assert not SystemConfig.tiny().warm_start_prices
        assert not SystemConfig.paper().warm_start_prices


class TestPriceFormEquivalence:
    """(ids, values) arrays and the dict warm-start agree exactly."""

    @pytest.mark.parametrize("mode", ["jacobi", "jacobi-dense", "gauss-seidel"])
    def test_tuple_equals_dict(self, mode):
        p = random_problem(np.random.default_rng(5), n_requests=40, n_uploaders=8)
        warm_dict = {u: 0.25 * i for i, u in enumerate(p.uploaders())}
        ids = np.fromiter(warm_dict.keys(), dtype=np.int64, count=len(warm_dict))
        vals = np.fromiter(warm_dict.values(), dtype=float, count=len(warm_dict))
        a = AuctionSolver(epsilon=0.01, mode=mode).solve(p, initial_prices=warm_dict)
        b = AuctionSolver(epsilon=0.01, mode=mode).solve(p, initial_prices=(ids, vals))
        assert a.assignment == b.assignment
        assert a.prices == b.prices
        assert a.etas == b.etas

    def test_mismatched_ids_fall_back_to_dict_semantics(self):
        p = random_problem(np.random.default_rng(6), n_requests=25, n_uploaders=6)
        uploaders = p.uploaders()
        # Subset of uploaders, scrambled order, one unknown id, one negative λ.
        ids = np.asarray([uploaders[2], uploaders[0], 999_999], dtype=np.int64)
        vals = np.asarray([1.5, -3.0, 7.0])
        as_dict = dict(zip(ids.tolist(), vals.tolist()))
        a = AuctionSolver(epsilon=0.01, mode="jacobi").solve(p, initial_prices=(ids, vals))
        b = AuctionSolver(epsilon=0.01, mode="jacobi").solve(p, initial_prices=as_dict)
        assert a.assignment == b.assignment
        assert a.prices == b.prices

    def test_result_price_arrays_round_trip(self):
        """A result's own price columns are a valid warm start.

        Re-bidding at converged prices is *not* an identity — requests
        whose bid ties the posted λ stay dormant (that is the documented
        CS-1 caveat) — but the warm continuation must stay bit-identical
        between the frontier and dense solvers, and prices never fall.
        """
        p = random_problem(np.random.default_rng(7), n_requests=30, n_uploaders=7)
        cold = AuctionSolver(epsilon=0.01, mode="jacobi").solve(p)
        warm = cold.price_arrays()
        a = AuctionSolver(epsilon=0.01, mode="jacobi").solve(p, initial_prices=warm)
        b = AuctionSolver(epsilon=0.01, mode="jacobi-dense").solve(
            p, initial_prices=warm
        )
        assert a.assignment == b.assignment
        assert a.prices == b.prices
        assert a.etas == b.etas
        for u, price in a.prices.items():
            assert price >= cold.prices[u]


class TestSlotLoop:
    def _system(self, **overrides) -> P2PSystem:
        config = SystemConfig.tiny(seed=11, bid_rounds_per_slot=3, **overrides)
        system = P2PSystem(config)
        system.populate_static(12)
        return system

    def test_warm_slot_runs_and_records(self):
        system = self._system(warm_start_prices=True)
        collector = system.run(30.0)
        assert len(collector.slots) == 3
        totals = collector.totals()
        assert totals["served_total"] > 0
        assert 0.0 <= totals["miss_rate"] <= 1.0

    def test_within_slot_only_does_not_carry(self):
        system = self._system(warm_start_prices=True)
        system.run_slot()
        assert system._carry_prices is None

    def test_across_slots_carries(self):
        system = self._system(
            warm_start_prices=True, warm_start_across_slots=True
        )
        system.run_slot()
        assert system._carry_prices is not None
        ids, vals = system._carry_prices
        assert len(ids) == len(vals)
        system.run_slot()  # consumes the carried λ without error

    def test_warm_flag_ignored_for_schedulers_without_support(self):
        system = self._system(warm_start_prices=True, scheduler="locality")
        metrics = system.run_slot()
        assert metrics.n_requests >= 0

    def test_default_off_matches_cold_twin(self):
        """Flag off ⇒ trajectories identical to a system never touched."""
        a = self._system()
        b = self._system(warm_start_prices=True)
        # Different flags, same seed: the *first* round of the first slot
        # is cold in both, so its problem must be identical.
        pa, _ = a.build_problem(a.now)
        pb, _ = b.build_problem(b.now)
        assert pa.n_requests == pb.n_requests
        ra = AuctionScheduler(epsilon=0.01).schedule(pa)
        rb = AuctionScheduler(epsilon=0.01).schedule(pb)
        assert ra.assignment == rb.assignment
