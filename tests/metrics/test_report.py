"""Tests for text rendering helpers."""

from __future__ import annotations

from repro.metrics.report import comparison_table, render_table, series_block, sparkline
from repro.metrics.timeseries import TimeSeries


def make_series(values, name="s"):
    series = TimeSeries(name)
    for i, v in enumerate(values):
        series.append(float(i), v)
    return series


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_is_flat(self):
        line = sparkline([3.0, 3.0, 3.0])
        assert line == "▁▁▁"

    def test_rising_series_rises(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁" and line[-1] == "█"

    def test_long_series_compressed_to_width(self):
        line = sparkline(list(range(1000)), width=40)
        assert len(line) == 40

    def test_short_series_not_padded(self):
        assert len(sparkline([1.0, 2.0], width=40)) == 2


class TestRenderTable:
    def test_contains_headers_and_rows(self):
        text = render_table(["a", "b"], [[1, 2.5], ["x", 3.0]])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "2.5" in text and "x" in text

    def test_floats_formatted_compactly(self):
        text = render_table(["v"], [[0.123456789]])
        assert "0.1235" in text


class TestBlocks:
    def test_series_block_summary(self):
        block = series_block(make_series([1.0, 2.0, 3.0]), "my series")
        assert "my series" in block
        assert "mean=2" in block

    def test_series_block_empty(self):
        assert "(empty)" in series_block(TimeSeries("x"))

    def test_comparison_table_lists_all_schedulers(self):
        table = comparison_table(
            {"auction": make_series([1, 2, 3]), "locality": make_series([0, 0, 1])},
            "welfare",
        )
        assert "auction" in table and "locality" in table
        assert "tail50%" in table
