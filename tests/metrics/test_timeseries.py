"""Tests for the time-series container."""

from __future__ import annotations

import math

import pytest

from repro.metrics.timeseries import TimeSeries


def make_series(pairs):
    series = TimeSeries("test")
    for t, v in pairs:
        series.append(t, v)
    return series


class TestAppend:
    def test_append_and_access(self):
        series = make_series([(0.0, 1.0), (10.0, 3.0)])
        assert len(series) == 2
        assert list(series.times) == [0.0, 10.0]
        assert list(series.values) == [1.0, 3.0]
        assert series.pairs() == [(0.0, 1.0), (10.0, 3.0)]

    def test_time_must_not_go_backwards(self):
        series = make_series([(5.0, 1.0)])
        with pytest.raises(ValueError):
            series.append(4.0, 2.0)

    def test_equal_times_allowed(self):
        series = make_series([(5.0, 1.0)])
        series.append(5.0, 2.0)
        assert len(series) == 2


class TestSummaries:
    def test_mean(self):
        assert make_series([(0, 1.0), (1, 3.0)]).mean() == 2.0

    def test_mean_of_empty_is_nan(self):
        assert math.isnan(TimeSeries("empty").mean())

    def test_last(self):
        assert make_series([(0, 1.0), (1, 9.0)]).last() == 9.0
        with pytest.raises(IndexError):
            TimeSeries("empty").last()

    def test_tail_mean(self):
        series = make_series([(i, float(i)) for i in range(10)])
        assert series.tail_mean(0.5) == pytest.approx(7.0)  # mean of 5..9
        assert series.tail_mean(1.0) == pytest.approx(4.5)

    def test_tail_mean_validation(self):
        series = make_series([(0, 1.0)])
        with pytest.raises(ValueError):
            series.tail_mean(0.0)

    def test_slope_direction(self):
        rising = make_series([(i, 2.0 * i) for i in range(5)])
        falling = make_series([(i, -1.0 * i) for i in range(5)])
        assert rising.slope() == pytest.approx(2.0)
        assert falling.slope() == pytest.approx(-1.0)
        assert make_series([(0, 1.0)]).slope() == 0.0


class TestSmoothing:
    def test_smoothed_constant_series_unchanged(self):
        series = make_series([(i, 5.0) for i in range(6)])
        assert list(series.smoothed(3).values) == [5.0] * 6

    def test_smoothing_reduces_variance(self):
        series = make_series([(i, float((-1) ** i)) for i in range(20)])
        smoothed = series.smoothed(5)
        assert smoothed.values.var() < series.values.var()

    def test_window_validation(self):
        with pytest.raises(ValueError):
            make_series([(0, 1.0)]).smoothed(0)
