"""Tests for the metrics collector."""

from __future__ import annotations

import pytest

from repro.metrics.collectors import MetricsCollector, SlotMetrics


def make_slot(time, welfare=10.0, inter=2, intra=8, due=100, missed=5, peers=50):
    return SlotMetrics(
        time=time,
        n_peers=peers,
        n_requests=120,
        n_served=inter + intra,
        welfare=welfare,
        inter_isp_chunks=inter,
        intra_isp_chunks=intra,
        chunks_due=due,
        chunks_missed=missed,
    )


class TestSlotMetrics:
    def test_inter_isp_fraction(self):
        assert make_slot(0).inter_isp_fraction == pytest.approx(0.2)

    def test_inter_isp_fraction_no_traffic(self):
        assert make_slot(0, inter=0, intra=0).inter_isp_fraction == 0.0

    def test_miss_rate(self):
        assert make_slot(0).miss_rate == pytest.approx(0.05)

    def test_miss_rate_nothing_due(self):
        assert make_slot(0, due=0, missed=0).miss_rate == 0.0


class TestCollector:
    def test_records_in_order(self):
        collector = MetricsCollector()
        collector.record(make_slot(0.0))
        collector.record(make_slot(10.0))
        assert len(collector) == 2

    def test_rejects_non_monotone_time(self):
        collector = MetricsCollector()
        collector.record(make_slot(10.0))
        with pytest.raises(ValueError):
            collector.record(make_slot(10.0))

    def test_series_extraction(self):
        collector = MetricsCollector()
        collector.record(make_slot(0.0, welfare=5.0))
        collector.record(make_slot(10.0, welfare=15.0))
        welfare = collector.welfare_series()
        assert list(welfare.times) == [0.0, 10.0]
        assert list(welfare.values) == [5.0, 15.0]
        assert collector.inter_isp_series().values[0] == pytest.approx(0.2)
        assert collector.miss_rate_series().values[0] == pytest.approx(0.05)
        assert collector.peers_series().values[0] == 50.0

    def test_totals_aggregate_correctly(self):
        collector = MetricsCollector()
        collector.record(make_slot(0.0, welfare=5.0, inter=1, intra=9, due=50, missed=1))
        collector.record(make_slot(10.0, welfare=15.0, inter=3, intra=7, due=50, missed=3))
        totals = collector.totals()
        assert totals["welfare_total"] == pytest.approx(20.0)
        assert totals["welfare_mean_per_slot"] == pytest.approx(10.0)
        assert totals["inter_isp_fraction"] == pytest.approx(4 / 20)
        assert totals["miss_rate"] == pytest.approx(4 / 100)
        assert totals["chunks_transferred"] == 20.0

    def test_totals_empty(self):
        totals = MetricsCollector().totals()
        assert totals["welfare_total"] == 0.0
        assert totals["miss_rate"] == 0.0
