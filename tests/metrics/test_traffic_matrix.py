"""Tests for the ISP traffic matrix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.traffic_matrix import TrafficMatrix


class TestAccounting:
    def test_record_and_totals(self):
        tm = TrafficMatrix(3)
        tm.record(0, 0, 5)
        tm.record(0, 1, 2)
        tm.record(2, 2)
        assert tm.total() == 8
        assert tm.intra_total() == 6
        assert tm.inter_total() == 2
        assert tm.inter_fraction() == pytest.approx(0.25)
        assert tm.localization_index() == pytest.approx(0.75)

    def test_row_and_column_sums(self):
        tm = TrafficMatrix(2)
        tm.record(0, 1, 3)
        tm.record(1, 1, 4)
        assert tm.isp_upload_totals() == [3, 4]
        assert tm.isp_download_totals() == [0, 7]

    def test_empty_matrix_degenerate_values(self):
        tm = TrafficMatrix(2)
        assert tm.inter_fraction() == 0.0
        assert tm.localization_index() == 1.0

    def test_matrix_copy_isolated(self):
        tm = TrafficMatrix(2)
        tm.record(0, 0)
        m = tm.matrix()
        m[0, 0] = 99
        assert tm.matrix()[0, 0] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficMatrix(0)
        with pytest.raises(ValueError):
            TrafficMatrix(2).record(0, 0, -1)

    def test_render_contains_summary(self):
        tm = TrafficMatrix(2)
        tm.record(0, 1, 2)
        text = tm.render()
        assert "localization" in text and "inter=2" in text


class TestSystemIntegration:
    def test_system_matrix_consistent_with_slot_metrics(self):
        from repro.p2p.config import SystemConfig
        from repro.p2p.system import P2PSystem

        system = P2PSystem(SystemConfig.tiny(seed=9))
        system.populate_static(15)
        collector = system.run(20.0)
        inter = sum(s.inter_isp_chunks for s in collector.slots)
        intra = sum(s.intra_isp_chunks for s in collector.slots)
        assert system.traffic_matrix.inter_total() == inter
        assert system.traffic_matrix.intra_total() == intra

    def test_auction_more_localized_than_agnostic(self):
        from repro.p2p.config import SystemConfig
        from repro.p2p.system import P2PSystem

        loc = {}
        for name in ("auction", "agnostic"):
            system = P2PSystem(SystemConfig.tiny(seed=9, scheduler=name))
            system.populate_static(15)
            system.run(20.0)
            loc[name] = system.traffic_matrix.localization_index()
        assert loc["auction"] >= loc["agnostic"]
