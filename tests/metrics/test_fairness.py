"""Tests for welfare decomposition and Jain's fairness index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.auction import AuctionSolver
from repro.core.problem import random_problem
from repro.metrics.fairness import jain_index, per_isp_welfare, per_peer_utilities


class TestJainIndex:
    def test_perfectly_even(self):
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_winner_floor(self):
        assert jain_index([9.0, 0.0, 0.0]) == pytest.approx(1 / 3)

    def test_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            values = rng.random(10)
            j = jain_index(values)
            assert 1 / 10 - 1e-12 <= j <= 1.0 + 1e-12

    def test_degenerate_inputs(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([-1.0, 2.0])

    def test_scale_invariant(self):
        values = [1.0, 2.0, 5.0]
        assert jain_index(values) == pytest.approx(
            jain_index([10 * v for v in values])
        )


class TestDecomposition:
    def test_per_peer_sums_to_welfare(self, small_problem):
        result = AuctionSolver(epsilon=1e-9).solve(small_problem)
        utilities = per_peer_utilities(small_problem, result)
        assert sum(utilities.values()) == pytest.approx(result.welfare(small_problem))

    def test_unserved_peers_absent(self, small_problem):
        result = AuctionSolver(epsilon=1e-9).solve(small_problem)
        utilities = per_peer_utilities(small_problem, result)
        assert 4 not in utilities  # request 3 (peer 4) never served

    def test_per_isp_grouping(self, small_problem):
        result = AuctionSolver(epsilon=1e-9).solve(small_problem)
        isp_of = lambda peer: peer % 2
        grouped = per_isp_welfare(small_problem, result, isp_of, n_isps=2)
        assert set(grouped) == {0, 1}
        assert sum(grouped.values()) == pytest.approx(result.welfare(small_problem))

    def test_on_random_instances(self, rng):
        p = random_problem(rng, n_requests=40, n_uploaders=6)
        result = AuctionSolver(epsilon=1e-6).solve(p)
        utilities = per_peer_utilities(p, result)
        assert sum(utilities.values()) == pytest.approx(result.welfare(p))
        # Served utilities are individually rational (never negative):
        # the auction refuses negative-utility edges.
        assert all(u >= -1e-9 for u in utilities.values())
