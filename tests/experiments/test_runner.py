"""Tests for the experiment runners (tiny scale)."""

from __future__ import annotations

import pytest

from repro.experiments.configs import figure_config
from repro.experiments.runner import run_comparison, run_price_trace


class TestRunComparison:
    def test_returns_collector_per_scheduler(self):
        config = figure_config("fig4", scale="tiny", seed=1)
        results = run_comparison(config)
        assert set(results) == {"auction", "locality"}
        for collector in results.values():
            assert len(collector.slots) == int(
                config.duration_seconds / config.system.slot_seconds
            )

    def test_warmup_discarded(self):
        config = figure_config("fig4", scale="tiny", seed=1)
        results = run_comparison(config)
        for collector in results.values():
            # Slots restart after warmup: first recorded time == warmup.
            assert collector.slots[0].time == pytest.approx(config.warmup_seconds)

    def test_workload_identical_across_schedulers(self):
        config = figure_config("fig6", scale="tiny", seed=2)
        results = run_comparison(config)
        peers_a = [s.n_peers for s in results["auction"].slots]
        peers_l = [s.n_peers for s in results["locality"].slots]
        assert peers_a == peers_l  # same arrivals/departure draws


class TestRunPriceTrace:
    def test_trace_structure(self):
        config = figure_config("fig2", scale="tiny", seed=0)
        trace = run_price_trace(config, n_slots=3)
        assert len(trace.slot_starts) == 3
        assert len(trace.convergence_seconds) == 3
        assert len(trace.times) == len(trace.prices)
        # Each slot contributes at least its opening zero point.
        assert len(trace.times) >= 3
        assert all(p >= 0.0 for p in trace.prices)

    def test_convergence_within_slot(self):
        config = figure_config("fig2", scale="tiny", seed=0)
        trace = run_price_trace(config, n_slots=3)
        slot = config.system.slot_seconds
        assert all(c < slot for c in trace.convergence_seconds)
        assert trace.mean_convergence() < slot

    def test_times_monotone(self):
        config = figure_config("fig2", scale="tiny", seed=0)
        trace = run_price_trace(config, n_slots=2)
        assert list(trace.times) == sorted(trace.times)
