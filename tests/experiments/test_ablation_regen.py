"""Archived ablation results must regenerate from the live pipeline.

``results/ablation_solvers.txt`` and ``results/ablation_epsilon.txt``
are produced by the benchmark harness from the array-native problem
pipeline.  These smoke tests re-run the exact generating configuration
and assert the deterministic columns (welfare, served counts, bid/round
work) match the archived text byte for byte — the timing column is the
only thing allowed to drift.  A mismatch means the pipeline's numeric
behaviour changed and the archives (and any conclusions drawn from
them) are stale.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.experiments.sweep import (
    epsilon_sweep,
    rebid_study,
    render_epsilon_sweep,
    render_rebid_study,
    render_solver_comparison,
    solver_comparison,
)

RESULTS = pathlib.Path(__file__).resolve().parent.parent.parent / "results"

#: Column names whose values are wall-clock measurements.
TIMING_COLUMNS = {"seconds", "solve_seconds"}


def table_without_timing(text: str):
    """Parse a rendered results table into rows of non-timing cells."""
    lines = [line for line in text.strip().splitlines() if line.strip()]
    header = lines[0].split()
    keep = [i for i, name in enumerate(header) if name not in TIMING_COLUMNS]
    rows = [[header[i] for i in keep]]
    for line in lines[2:]:  # skip the rule line
        cells = line.split()
        assert len(cells) == len(header), line
        rows.append([cells[i] for i in keep])
    return rows


@pytest.mark.skipif(
    not (RESULTS / "ablation_solvers.txt").exists(),
    reason="archive not generated yet",
)
def test_ablation_solvers_regenerates_identically():
    archived = (RESULTS / "ablation_solvers.txt").read_text(encoding="utf-8")
    rows = solver_comparison(
        rng=np.random.default_rng(1),
        n_requests=800,
        n_uploaders=40,
        max_candidates=8,
        epsilon=0.01,
    )
    regenerated = render_solver_comparison(rows)
    assert table_without_timing(regenerated) == table_without_timing(archived)


@pytest.mark.skipif(
    not (RESULTS / "ablation_rebid.txt").exists(),
    reason="archive not generated yet",
)
def test_ablation_rebid_regenerates_identically():
    """The re-bid study's deterministic columns must regenerate byte-equal.

    Heavier than the other regen pins (seven end-to-end runs), so it
    samples the study at two representative cells and compares just
    those rows against the archive.
    """
    archived = (RESULTS / "ablation_rebid.txt").read_text(encoding="utf-8")
    rows = rebid_study(rounds_list=(1, 2), seed=0)
    regenerated = render_rebid_study(rows)
    regen_rows = table_without_timing(regenerated)
    arch_rows = table_without_timing(archived)
    assert regen_rows[0] == arch_rows[0]  # header
    assert regen_rows[1:] == arch_rows[1 : len(regen_rows)]


@pytest.mark.skipif(
    not (RESULTS / "ablation_epsilon.txt").exists(),
    reason="archive not generated yet",
)
def test_ablation_epsilon_regenerates_identically():
    archived = (RESULTS / "ablation_epsilon.txt").read_text(encoding="utf-8")
    rows = epsilon_sweep(
        [10.0, 1.0, 0.1, 0.01, 0.001],
        rng=np.random.default_rng(0),
        n_requests=600,
        n_uploaders=30,
        max_candidates=8,
        mode="jacobi",
    )
    regenerated = render_epsilon_sweep(rows)
    assert table_without_timing(regenerated) == table_without_timing(archived)
