"""Tests for experiment configurations."""

from __future__ import annotations

import pytest

from repro.experiments.configs import FIGURES, figure_config


class TestFigureConfig:
    @pytest.mark.parametrize("figure", sorted(FIGURES))
    @pytest.mark.parametrize("scale", ["tiny", "bench"])
    def test_all_figures_buildable(self, figure, scale):
        config = figure_config(figure, scale=scale, seed=1)
        config.system.validate()
        assert config.figure == figure
        assert config.duration_seconds > 0

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            figure_config("fig99")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            figure_config("fig3", scale="huge")

    def test_fig3_and_fig6_use_churn(self):
        assert figure_config("fig3").churn
        assert figure_config("fig6").churn
        assert not figure_config("fig4").churn

    def test_fig6_has_early_departures(self):
        assert figure_config("fig6").system.early_departure_prob == 0.6
        assert figure_config("fig3").system.early_departure_prob == 0.0

    def test_fig2_single_scheduler(self):
        assert figure_config("fig2").schedulers == ("auction",)

    def test_comparison_figures_include_locality(self):
        for figure in ("fig3", "fig4", "fig5", "fig6"):
            assert "locality" in figure_config(figure).schedulers

    def test_static_figures_use_synchronized_audience(self):
        assert not figure_config("fig4").stagger
        assert not figure_config("fig5").stagger

    def test_paper_scale_uses_paper_parameters(self):
        config = figure_config("fig4", scale="paper")
        assert config.n_static_peers == 500
        assert config.system.n_videos == 100
        assert config.system.prefetch_chunks == 100

    def test_seed_propagates(self):
        assert figure_config("fig3", seed=42).system.seed == 42
