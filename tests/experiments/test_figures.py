"""Tests for the per-figure reproduction functions (tiny scale)."""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    FigureResult,
    fig2_price_convergence,
    fig4_inter_isp_traffic,
    run_figure,
)


class TestFigureResults:
    def test_fig2_structure(self):
        result = fig2_price_convergence(scale="tiny", seed=0, n_slots=2)
        assert isinstance(result, FigureResult)
        assert result.figure == "fig2"
        assert "lambda_u" in result.series["auction"]
        assert set(result.shape) >= {"price_moves", "converges_within_slot"}
        assert "Fig. 2" in result.text

    def test_fig4_series_and_shape_keys(self):
        result = fig4_inter_isp_traffic(scale="tiny", seed=0)
        assert set(result.series) == {"auction", "locality"}
        for metrics in result.series.values():
            assert {"welfare", "inter_isp", "miss_rate", "peers"} <= set(metrics)
        assert "auction_lower_inter_isp" in result.shape
        assert "inter-ISP" in result.text

    def test_run_figure_dispatch(self):
        result = run_figure("fig4", scale="tiny", seed=1)
        assert result.figure == "fig4"

    def test_run_figure_unknown(self):
        with pytest.raises(ValueError, match="unknown figure"):
            run_figure("fig1")

    def test_shape_holds_reflects_all_checks(self):
        result = fig4_inter_isp_traffic(scale="tiny", seed=0)
        assert result.shape_holds == all(result.shape.values())

    def test_deterministic_for_seed(self):
        a = fig4_inter_isp_traffic(scale="tiny", seed=2)
        b = fig4_inter_isp_traffic(scale="tiny", seed=2)
        assert list(a.series["auction"]["welfare"].values) == list(
            b.series["auction"]["welfare"].values
        )
