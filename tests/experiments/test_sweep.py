"""Tests for ablation sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.sweep import (
    epsilon_sweep,
    render_epsilon_sweep,
    render_solver_comparison,
    scheduler_shootout,
    solver_comparison,
)


class TestEpsilonSweep:
    def test_rows_cover_requested_epsilons(self):
        rows = epsilon_sweep(
            [1.0, 0.01],
            rng=np.random.default_rng(0),
            n_requests=60,
            n_uploaders=8,
        )
        assert [r.epsilon for r in rows] == [1.0, 0.01]

    def test_smaller_epsilon_at_least_as_optimal(self):
        rows = epsilon_sweep(
            [5.0, 0.001],
            rng=np.random.default_rng(1),
            n_requests=80,
            n_uploaders=6,
        )
        assert rows[1].optimality >= rows[0].optimality - 1e-9
        assert rows[1].optimality == pytest.approx(1.0, abs=1e-3)

    def test_render(self):
        rows = epsilon_sweep([0.1], rng=np.random.default_rng(0), n_requests=30)
        text = render_epsilon_sweep(rows)
        assert "epsilon" in text and "optimality" in text


class TestSolverComparison:
    def test_all_solvers_near_optimal(self):
        rows = solver_comparison(
            rng=np.random.default_rng(2), n_requests=60, n_uploaders=8
        )
        names = {r.solver for r in rows}
        assert {"auction-gs", "auction-jacobi", "hungarian", "lp", "min-cost-flow"} <= names
        best = max(r.welfare for r in rows)
        for row in rows:
            assert row.welfare >= best - 60 * 0.01 - 1e-3, row

    def test_render(self):
        rows = solver_comparison(rng=np.random.default_rng(0), n_requests=20, n_uploaders=4)
        assert "hungarian" in render_solver_comparison(rows)


class TestShootout:
    def test_runs_all_schedulers(self):
        results = scheduler_shootout(
            schedulers=("auction", "locality"),
            seed=0,
            n_peers=12,
            duration_seconds=20.0,
        )
        assert set(results) == {"auction", "locality"}
        for totals in results.values():
            assert "welfare_mean_per_slot" in totals
