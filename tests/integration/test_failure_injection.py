"""Integration: behaviour under injected failures (Section IV-C claims)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributed import DistributedAuction
from repro.core.exact import solve_hungarian
from repro.core.problem import SchedulingProblem, random_problem
from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem
from repro.sim.engine import Simulator
from repro.sim.network import ConstantLatency, SimNetwork


class TestDistributedAuctionFailures:
    @pytest.mark.parametrize("loss", [0.05, 0.3, 0.7])
    def test_quiesces_and_feasible_under_any_loss(self, loss):
        rng = np.random.default_rng(3)
        p = random_problem(rng, n_requests=30, n_uploaders=5, capacity_range=(1, 3))
        sim = Simulator()
        network = SimNetwork(
            sim,
            latency=ConstantLatency(0.01),
            loss_probability=loss,
            rng=np.random.default_rng(7),
        )
        auction = DistributedAuction(sim, network, p, epsilon=1e-6)
        result = auction.run_to_convergence()
        result.check_feasible(p)

    def test_partition_confines_to_reachable_uploaders(self):
        p = SchedulingProblem()
        p.set_capacity(10, 1)
        p.set_capacity(20, 1)
        p.add_request(1, "a", 8.0, {10: 0.5, 20: 3.0})
        sim = Simulator()
        network = SimNetwork(sim, latency=ConstantLatency(0.01))
        network.partition(1, 10)  # the cheap uploader is unreachable
        auction = DistributedAuction(sim, network, p, epsilon=1e-6)
        result = auction.run_to_convergence()
        assert result.assignment[0] == 20

    def test_mass_departure_mid_auction(self):
        """Half the uploaders leave mid-run: the auction converges on the
        survivors (Section IV-C's claim, numerically checked)."""
        rng = np.random.default_rng(4)
        p = random_problem(rng, n_requests=40, n_uploaders=8, capacity_range=(2, 4))
        sim = Simulator()
        network = SimNetwork(sim, latency=ConstantLatency(0.01))
        auction = DistributedAuction(sim, network, p, epsilon=1e-6)
        auction.start()
        sim.run(until=0.02)
        departed = p.uploaders()[:4]
        for uploader in departed:
            auction.depart_peer(uploader)
        result = auction.run_to_convergence()
        result.check_feasible(p)
        for uploader in departed:
            assert uploader not in result.assignment.values()

        # Compare against the optimum of the reduced problem.
        reduced = SchedulingProblem()
        for u in p.uploaders():
            reduced.set_capacity(u, 0 if u in departed else p.capacity_of(u))
        for r in range(p.n_requests):
            request = p.request(r)
            candidates = {
                int(u): float(c)
                for u, c in zip(p.candidates_of(r), p.costs_of(r))
                if int(u) not in departed
            }
            reduced.add_request(request.peer, request.chunk, request.valuation, candidates)
        optimum = solve_hungarian(reduced).welfare(reduced)
        welfare = result.welfare(p)
        assert welfare >= optimum - p.n_requests * 1e-6 - 1e-9


class TestSystemFailures:
    def test_zero_upload_population(self):
        """Peers with minimal upload still play (seeds carry the system)."""
        config = SystemConfig.tiny(
            seed=5, peer_upload_min_multiple=0.01, peer_upload_max_multiple=0.02
        )
        system = P2PSystem(config)
        system.populate_static(10)
        collector = system.run(30.0)
        assert len(collector.slots) == 3

    def test_flash_crowd_arrivals(self):
        """A burst of arrivals (10×) must not crash or deadlock the slot loop."""
        config = SystemConfig.tiny(seed=6, arrival_rate_per_s=10.0)
        system = P2PSystem(config)
        collector = system.run(30.0, churn=True)
        assert system.arrivals > 100
        assert len(collector.slots) == 3

    def test_everyone_departs_early(self):
        config = SystemConfig.tiny(
            seed=7, arrival_rate_per_s=1.0, early_departure_prob=1.0
        )
        system = P2PSystem(config)
        system.run(60.0, churn=True)
        # All non-seed peers eventually leave (some recent arrivals remain).
        assert system.departures > 0
        watching = [p for p in system.peers.values() if not p.is_seed]
        assert all(p.departure_time is not None for p in watching)

    def test_single_isp_degenerates_gracefully(self):
        """With one ISP there is no inter-ISP traffic at all."""
        config = SystemConfig.tiny(seed=8, n_isps=1)
        system = P2PSystem(config)
        system.populate_static(10)
        collector = system.run(30.0)
        assert all(s.inter_isp_chunks == 0 for s in collector.slots)
