"""Integration at the paper's full Section V scale (one slot).

500 peers, 100 videos of 2560 × 8 KB chunks, 100-chunk windows, 30
neighbors, 2 seeds per ISP per video — the slot ILP has ~50 000 requests
and ~700 000 edges.  The vectorized auction must solve it in a few
rounds and match the LP-relaxation optimum (integral by total
unimodularity) within n·ε.

This is the slowest test in the suite (≈1 min); it guards the scaling
claim that the harness can run the paper's actual configuration.
"""

from __future__ import annotations

import pytest

from repro.core.auction import AuctionSolver
from repro.core.exact import solve_lp_relaxation
from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem

EPSILON = 0.01


@pytest.fixture(scope="module")
def paper_slot():
    config = SystemConfig.paper(seed=0, bid_rounds_per_slot=1)
    system = P2PSystem(config)
    system.populate_static(500)
    problem, _ = system.build_problem(0.0)
    return system, problem


@pytest.mark.slow
def test_paper_scale_slot_shape(paper_slot):
    system, problem = paper_slot
    assert system.n_seeds() == 5 * 100 * 2  # ISPs × videos × 2
    assert problem.n_requests > 30_000
    assert problem.n_edges() > 200_000
    assert problem.total_capacity() > problem.n_requests  # Theorem 1's regime


@pytest.mark.slow
def test_paper_scale_auction_matches_lp_optimum(paper_slot):
    _, problem = paper_slot
    result = AuctionSolver(epsilon=EPSILON, mode="jacobi").solve(problem)
    result.check_feasible(problem)
    assert result.stats.converged
    assert result.stats.rounds < 100  # a handful of Jacobi rounds suffice

    lp = solve_lp_relaxation(problem)
    assert lp.integral
    assert result.welfare(problem) >= lp.value - problem.n_requests * EPSILON - 1e-6
    # At this scale the auction lands exactly on the optimum in practice.
    assert result.welfare(problem) == pytest.approx(lp.value, rel=1e-6)
