"""Integration: whole-system invariants and the paper's orderings."""

from __future__ import annotations

import pytest

from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem


def run_system(scheduler, seed=13, n_peers=25, duration=40.0, churn=False, **overrides):
    config = SystemConfig.tiny(seed=seed, scheduler=scheduler, **overrides)
    system = P2PSystem(config)
    if n_peers:
        system.populate_static(n_peers)
    collector = system.run(duration, churn=churn)
    return system, collector


class TestConservation:
    def test_chunks_conserved(self):
        system, collector = run_system("auction")
        transferred = sum(s.inter_isp_chunks + s.intra_isp_chunks for s in collector.slots)
        downloaded = sum(p.chunks_downloaded for p in system.peers.values())
        uploaded = sum(p.chunks_uploaded for p in system.peers.values())
        assert transferred == downloaded == uploaded

    def test_served_matches_traffic(self):
        _, collector = run_system("locality")
        for slot in collector.slots:
            assert slot.n_served == slot.inter_isp_chunks + slot.intra_isp_chunks

    def test_capacity_respected_every_slot(self):
        """No uploader ever ships more than B(u) chunks in a slot."""
        config = SystemConfig.tiny(seed=3)
        system = P2PSystem(config)
        system.populate_static(20)
        before = {p.peer_id: p.chunks_uploaded for p in system.peers.values()}
        system.run_slot()
        for peer in system.peers.values():
            shipped = peer.chunks_uploaded - before.get(peer.peer_id, 0)
            assert shipped <= peer.upload_capacity_chunks

    def test_miss_rates_bounded(self):
        _, collector = run_system("auction", duration=60.0)
        for slot in collector.slots:
            assert 0.0 <= slot.miss_rate <= 1.0
            assert 0.0 <= slot.inter_isp_fraction <= 1.0


class TestReproducibility:
    def test_same_seed_identical_series(self):
        _, a = run_system("auction", seed=21)
        _, b = run_system("auction", seed=21)
        assert [s.welfare for s in a.slots] == [s.welfare for s in b.slots]
        assert [s.chunks_missed for s in a.slots] == [s.chunks_missed for s in b.slots]

    def test_different_seed_differs(self):
        _, a = run_system("auction", seed=21)
        _, b = run_system("auction", seed=22)
        assert [s.welfare for s in a.slots] != [s.welfare for s in b.slots]


class TestPaperOrderings:
    """The paper's qualitative results on a small workload."""

    def test_auction_beats_locality_on_welfare(self):
        _, auction = run_system("auction", seed=31)
        _, locality = run_system("locality", seed=31)
        welfare_a = sum(s.welfare for s in auction.slots)
        welfare_l = sum(s.welfare for s in locality.slots)
        assert welfare_a > welfare_l

    def test_auction_never_negative_welfare(self):
        _, collector = run_system("auction", seed=31)
        for slot in collector.slots:
            assert slot.welfare >= -1e-9

    def test_agnostic_worst_on_inter_isp(self):
        _, auction = run_system("auction", seed=31)
        _, agnostic = run_system("agnostic", seed=31)
        inter_a = sum(s.inter_isp_chunks for s in auction.slots)
        inter_g = sum(s.inter_isp_chunks for s in agnostic.slots)
        total_a = max(1, sum(s.n_served for s in auction.slots))
        total_g = max(1, sum(s.n_served for s in agnostic.slots))
        assert inter_a / total_a <= inter_g / total_g

    def test_auction_matches_hungarian_system_welfare(self):
        """Per-slot optimality end-to-end: the auction-run system achieves
        the same welfare trajectory as an exact-oracle-run system."""
        _, auction = run_system("auction", seed=41, duration=30.0)
        _, hungarian = run_system("hungarian", seed=41, duration=30.0)
        for a, h in zip(auction.slots, hungarian.slots):
            assert a.welfare == pytest.approx(h.welfare, abs=0.05 * max(1.0, abs(h.welfare)))


class TestChurnRuns:
    def test_churn_with_departures_stays_consistent(self):
        system, collector = run_system(
            "auction",
            seed=17,
            n_peers=0,
            duration=60.0,
            churn=True,
            arrival_rate_per_s=0.8,
            early_departure_prob=0.6,
        )
        assert system.arrivals > 0
        transferred = sum(s.inter_isp_chunks + s.intra_isp_chunks for s in collector.slots)
        # Upload/download counters of *online* peers can't exceed transfers.
        downloaded = sum(p.chunks_downloaded for p in system.peers.values())
        assert downloaded <= transferred

    def test_population_tracks_arrivals_and_departures(self):
        system, collector = run_system(
            "auction", seed=18, n_peers=0, duration=60.0, churn=True
        )
        assert len(system.peers) == system.n_seeds() + system.arrivals - system.departures
