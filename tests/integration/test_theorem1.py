"""Integration: numerical verification of Theorem 1 across solvers.

The auction (centralized GS, centralized Jacobi, distributed message
level, ε-scaled) must agree with three independent exact oracles on
random instances spanning abundance and scarcity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.auction import AuctionSolver
from repro.core.distributed import DistributedAuction
from repro.core.duality import verify_theorem1
from repro.core.epsilon_scaling import ScaledAuctionSolver
from repro.core.exact import solve_hungarian, solve_lp_relaxation, solve_min_cost_flow
from repro.core.problem import random_problem
from repro.sim.engine import Simulator
from repro.sim.network import ConstantLatency, SimNetwork

EPS = 1e-6


def distributed_solve(problem, epsilon):
    sim = Simulator()
    network = SimNetwork(sim, latency=ConstantLatency(0.01))
    return DistributedAuction(sim, network, problem, epsilon=epsilon).run_to_convergence()


@pytest.mark.parametrize("seed", range(8))
def test_all_solvers_agree(seed):
    rng = np.random.default_rng(seed)
    problem = random_problem(
        rng,
        n_requests=int(rng.integers(10, 80)),
        n_uploaders=int(rng.integers(2, 10)),
        max_candidates=int(rng.integers(1, 6)),
        capacity_range=(1, 3),
    )
    n = problem.n_requests
    optimum = solve_hungarian(problem).welfare(problem)

    lp = solve_lp_relaxation(problem)
    assert lp.integral
    assert lp.value == pytest.approx(optimum, abs=1e-6)
    assert solve_min_cost_flow(problem).welfare(problem) == pytest.approx(
        optimum, abs=1e-3
    )

    for solver in (
        AuctionSolver(epsilon=EPS, mode="gauss-seidel"),
        AuctionSolver(epsilon=EPS, mode="jacobi"),
        ScaledAuctionSolver(epsilon_final=EPS),
    ):
        result = solver.solve(problem)
        result.check_feasible(problem)
        assert result.welfare(problem) >= optimum - n * EPS - 1e-9

    distributed = distributed_solve(problem, EPS)
    distributed.check_feasible(problem)
    assert distributed.welfare(problem) >= optimum - n * EPS - 1e-9


@pytest.mark.parametrize("seed", range(4))
def test_certificates_on_system_generated_problems(seed):
    """Theorem 1 checks on problems produced by the actual P2P system."""
    from repro.p2p.config import SystemConfig
    from repro.p2p.system import P2PSystem

    system = P2PSystem(SystemConfig.tiny(seed=seed))
    system.populate_static(12)
    system.run(10.0)
    problem, _ = system.build_problem(system.now)
    if problem.n_requests == 0:
        pytest.skip("workload produced no requests")
    result = AuctionSolver(epsilon=EPS, mode="gauss-seidel").solve(problem)
    report = verify_theorem1(problem, result, epsilon=EPS)
    assert report.optimal, report.violations[:5]
    optimum = solve_hungarian(problem).welfare(problem)
    assert result.welfare(problem) >= optimum - problem.n_requests * EPS - 1e-9


def test_epsilon_zero_on_generic_instance_matches_optimum():
    """With continuous random costs (no ties), the paper's exact ε = 0
    rule reaches the optimum — Theorem 1's setting."""
    rng = np.random.default_rng(99)
    problem = random_problem(rng, n_requests=40, n_uploaders=8, capacity_range=(2, 4))
    result = AuctionSolver(epsilon=0.0, mode="gauss-seidel").solve(problem)
    optimum = solve_hungarian(problem).welfare(problem)
    assert result.welfare(problem) == pytest.approx(optimum, abs=1e-9)
