"""Integration: the whole P2P system driven by the message-level protocol.

Runs the same workload once with the centralized auction solver and once
with the full distributed protocol (per-slot simulated network, bids,
timeouts).  Theorem 1 says both must reach the slot optima, so the
system-level series should match almost exactly.
"""

from __future__ import annotations

import pytest

from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem


def run(scheduler: str, seed: int = 23):
    system = P2PSystem(SystemConfig.tiny(seed=seed, scheduler=scheduler))
    system.populate_static(15)
    return system.run(30.0)


class TestDistributedSystemMode:
    def test_matches_centralized_welfare(self):
        central = run("auction")
        distributed = run("auction-distributed")
        for c, d in zip(central.slots, distributed.slots):
            assert d.welfare == pytest.approx(
                c.welfare, abs=0.05 * max(1.0, abs(c.welfare))
            )

    def test_same_traffic_profile(self):
        central = run("auction")
        distributed = run("auction-distributed")
        inter_c = sum(s.inter_isp_chunks for s in central.slots)
        inter_d = sum(s.inter_isp_chunks for s in distributed.slots)
        served_c = sum(s.n_served for s in central.slots)
        served_d = sum(s.n_served for s in distributed.slots)
        assert served_d == pytest.approx(served_c, rel=0.05)
        assert abs(inter_d - inter_c) <= max(3, 0.2 * max(inter_c, 1))

    def test_distributed_under_message_loss_still_plays(self):
        from repro.core.scheduler import DistributedAuctionScheduler

        config = SystemConfig.tiny(seed=23)
        system = P2PSystem(
            config,
            scheduler=DistributedAuctionScheduler(loss_probability=0.15),
        )
        system.populate_static(15)
        collector = system.run(30.0)
        # Loss costs some transfers but the system keeps functioning.
        assert sum(s.n_served for s in collector.slots) > 0
        for slot in collector.slots:
            assert 0.0 <= slot.miss_rate <= 1.0
