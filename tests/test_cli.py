"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_arguments(self):
        args = build_parser().parse_args(
            ["figures", "--figure", "fig4", "--scale", "tiny"]
        )
        assert args.figure == "fig4"
        assert args.scale == "tiny"

    def test_invalid_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--figure", "fig99"])

    def test_seed_option(self):
        args = build_parser().parse_args(["--seed", "9", "solvers"])
        assert args.seed == 9


class TestCommands:
    def test_solvers_command_runs(self, capsys):
        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        assert "hungarian" in out

    def test_sweep_epsilon_command_runs(self, capsys):
        assert main(["sweep-epsilon"]) == 0
        assert "optimality" in capsys.readouterr().out

    def test_figures_single_tiny(self, capsys):
        assert main(["figures", "--figure", "fig2", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "shape checks" in out
